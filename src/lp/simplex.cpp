#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/logging.h"
#include "common/strings.h"
#include "lp/revised_simplex.h"

namespace fpva::lp {

namespace {

constexpr double kPivotEpsilon = 1e-9;

enum class VarState : unsigned char { kBasic, kAtLower, kAtUpper };

/// Dense two-phase bounded-variable simplex over the extended system
/// [A | I_slack | artificials] x = b. The tableau invariant is
/// tableau = B^{-1} * A_ext; basic values are tracked explicitly in x_.
class SimplexSolver {
 public:
  SimplexSolver(const Model& model, const SolveOptions& options)
      : model_(model), options_(options) {}

  Solution run() {
    build();
    Solution result;
    if (artificial_count_ > 0) {
      set_phase1_costs();
      if (!iterate(result)) return result;  // iteration limit
      double infeasibility = 0.0;
      for (int j = first_artificial_; j < total_vars_; ++j) {
        infeasibility += x_[static_cast<std::size_t>(j)];
      }
      if (infeasibility > options_.tolerance * 10) {
        result.status = SolveStatus::kInfeasible;
        return result;
      }
      evict_basic_artificials();
      for (int j = first_artificial_; j < total_vars_; ++j) {
        lower_[static_cast<std::size_t>(j)] = 0.0;
        upper_[static_cast<std::size_t>(j)] = 0.0;
        x_[static_cast<std::size_t>(j)] =
            std::min(std::max(x_[static_cast<std::size_t>(j)], 0.0), 0.0);
      }
    }
    set_phase2_costs();
    if (!iterate(result)) return result;

    result.status = SolveStatus::kOptimal;
    result.values.assign(x_.begin(),
                         x_.begin() + model_.variable_count());
    for (int j = 0; j < model_.variable_count(); ++j) {
      auto& value = result.values[static_cast<std::size_t>(j)];
      const Variable& var = model_.variable(j);
      value = std::min(std::max(value, var.lower), var.upper);
    }
    result.objective = model_.objective_value(result.values);
    result.iterations = iterations_;
    return result;
  }

 private:
  double& at(int row, int col) {
    return tableau_[static_cast<std::size_t>(row) *
                        static_cast<std::size_t>(total_vars_) +
                    static_cast<std::size_t>(col)];
  }

  void build() {
    const int n = model_.variable_count();
    const int m = model_.constraint_count();
    rows_ = m;

    // Merge duplicate terms into dense structural rows.
    dense_rows_.assign(static_cast<std::size_t>(m) *
                           static_cast<std::size_t>(n),
                       0.0);
    rhs_.resize(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      const Constraint& row = model_.constraint(i);
      rhs_[static_cast<std::size_t>(i)] = row.rhs;
      for (const Term& term : row.terms) {
        dense_rows_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(term.variable)] +=
            term.coefficient;
      }
    }

    // Structural bounds and initial nonbasic placement (bound nearest 0).
    lower_.resize(static_cast<std::size_t>(n));
    upper_.resize(static_cast<std::size_t>(n));
    x_.assign(static_cast<std::size_t>(n), 0.0);
    state_.assign(static_cast<std::size_t>(n), VarState::kAtLower);
    for (int j = 0; j < n; ++j) {
      const Variable& var = model_.variable(j);
      lower_[static_cast<std::size_t>(j)] = var.lower;
      upper_[static_cast<std::size_t>(j)] = var.upper;
      const bool prefer_lower = std::abs(var.lower) <= std::abs(var.upper);
      state_[static_cast<std::size_t>(j)] =
          prefer_lower ? VarState::kAtLower : VarState::kAtUpper;
      x_[static_cast<std::size_t>(j)] = prefer_lower ? var.lower : var.upper;
    }

    // Slack bounds with finite caps derived from structural activity range.
    std::vector<double> slack_lower(static_cast<std::size_t>(m));
    std::vector<double> slack_upper(static_cast<std::size_t>(m));
    std::vector<double> residual(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      double min_activity = 0.0;
      double max_activity = 0.0;
      double fixed_activity = 0.0;
      for (int j = 0; j < n; ++j) {
        const double a =
            dense_rows_[static_cast<std::size_t>(i) *
                            static_cast<std::size_t>(n) +
                        static_cast<std::size_t>(j)];
        if (a == 0.0) continue;
        const double lo = lower_[static_cast<std::size_t>(j)];
        const double hi = upper_[static_cast<std::size_t>(j)];
        min_activity += std::min(a * lo, a * hi);
        max_activity += std::max(a * lo, a * hi);
        fixed_activity += a * x_[static_cast<std::size_t>(j)];
      }
      const double b = rhs_[static_cast<std::size_t>(i)];
      const Sense sense = model_.constraint(i).sense;
      switch (sense) {
        case Sense::kLessEqual:
          slack_lower[static_cast<std::size_t>(i)] = 0.0;
          slack_upper[static_cast<std::size_t>(i)] =
              std::max(1.0, b - min_activity + 1.0);
          break;
        case Sense::kGreaterEqual:
          slack_lower[static_cast<std::size_t>(i)] =
              std::min(-1.0, b - max_activity - 1.0);
          slack_upper[static_cast<std::size_t>(i)] = 0.0;
          break;
        case Sense::kEqual:
          slack_lower[static_cast<std::size_t>(i)] = 0.0;
          slack_upper[static_cast<std::size_t>(i)] = 0.0;
          break;
      }
      residual[static_cast<std::size_t>(i)] = b - fixed_activity;
    }

    // Decide which rows need an artificial: slack takes the residual when it
    // fits its bounds, otherwise it is clamped and an artificial absorbs the
    // remainder.
    std::vector<int> artificial_row;
    artificial_sign_.assign(static_cast<std::size_t>(m), 0.0);
    std::vector<double> slack_value(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      const double r = residual[static_cast<std::size_t>(i)];
      const double lo = slack_lower[static_cast<std::size_t>(i)];
      const double hi = slack_upper[static_cast<std::size_t>(i)];
      if (r >= lo - options_.tolerance && r <= hi + options_.tolerance) {
        slack_value[static_cast<std::size_t>(i)] =
            std::min(std::max(r, lo), hi);
      } else {
        const double clamped = std::min(std::max(r, lo), hi);
        slack_value[static_cast<std::size_t>(i)] = clamped;
        const double leftover = r - clamped;
        artificial_sign_[static_cast<std::size_t>(i)] =
            leftover > 0 ? 1.0 : -1.0;
        artificial_row.push_back(i);
      }
    }
    artificial_count_ = static_cast<int>(artificial_row.size());
    first_artificial_ = n + m;
    total_vars_ = n + m + artificial_count_;

    // Extend bounds/values/states to slacks and artificials.
    lower_.resize(static_cast<std::size_t>(total_vars_));
    upper_.resize(static_cast<std::size_t>(total_vars_));
    x_.resize(static_cast<std::size_t>(total_vars_));
    state_.resize(static_cast<std::size_t>(total_vars_), VarState::kAtLower);
    basis_.assign(static_cast<std::size_t>(m), -1);

    for (int i = 0; i < m; ++i) {
      const int slack = n + i;
      lower_[static_cast<std::size_t>(slack)] =
          slack_lower[static_cast<std::size_t>(i)];
      upper_[static_cast<std::size_t>(slack)] =
          slack_upper[static_cast<std::size_t>(i)];
      x_[static_cast<std::size_t>(slack)] =
          slack_value[static_cast<std::size_t>(i)];
      if (artificial_sign_[static_cast<std::size_t>(i)] == 0.0) {
        state_[static_cast<std::size_t>(slack)] = VarState::kBasic;
        basis_[static_cast<std::size_t>(i)] = slack;
      } else {
        // Slack parked at the bound it was clamped to.
        state_[static_cast<std::size_t>(slack)] =
            slack_value[static_cast<std::size_t>(i)] <=
                    slack_lower[static_cast<std::size_t>(i)] +
                        options_.tolerance
                ? VarState::kAtLower
                : VarState::kAtUpper;
      }
    }
    for (int k = 0; k < artificial_count_; ++k) {
      const int row = artificial_row[static_cast<std::size_t>(k)];
      const int var = first_artificial_ + k;
      const double leftover =
          residual[static_cast<std::size_t>(row)] -
          slack_value[static_cast<std::size_t>(row)];
      lower_[static_cast<std::size_t>(var)] = 0.0;
      upper_[static_cast<std::size_t>(var)] = std::abs(leftover) + 1.0;
      x_[static_cast<std::size_t>(var)] = std::abs(leftover);
      state_[static_cast<std::size_t>(var)] = VarState::kBasic;
      basis_[static_cast<std::size_t>(row)] = var;
    }

    // Tableau = B^{-1} A_ext. The initial basis is diagonal (+1 for slack
    // rows, sign for artificial rows), so the tableau is A_ext with
    // artificial rows scaled by their sign.
    tableau_.assign(static_cast<std::size_t>(m) *
                        static_cast<std::size_t>(total_vars_),
                    0.0);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        at(i, j) = dense_rows_[static_cast<std::size_t>(i) *
                                   static_cast<std::size_t>(n) +
                               static_cast<std::size_t>(j)];
      }
      at(i, n + i) = 1.0;
    }
    for (int k = 0; k < artificial_count_; ++k) {
      const int row = artificial_row[static_cast<std::size_t>(k)];
      at(row, first_artificial_ + k) =
          artificial_sign_[static_cast<std::size_t>(row)];
    }
    for (int i = 0; i < m; ++i) {
      if (artificial_sign_[static_cast<std::size_t>(i)] == -1.0) {
        for (int j = 0; j < total_vars_; ++j) {
          at(i, j) = -at(i, j);
        }
      }
    }
    dense_rows_.clear();
    dense_rows_.shrink_to_fit();
  }

  void set_phase1_costs() {
    cost_.assign(static_cast<std::size_t>(total_vars_), 0.0);
    for (int j = first_artificial_; j < total_vars_; ++j) {
      cost_[static_cast<std::size_t>(j)] = 1.0;
    }
    rebuild_reduced_costs();
  }

  void set_phase2_costs() {
    cost_.assign(static_cast<std::size_t>(total_vars_), 0.0);
    for (int j = 0; j < model_.variable_count(); ++j) {
      cost_[static_cast<std::size_t>(j)] = model_.variable(j).objective;
    }
    rebuild_reduced_costs();
  }

  void rebuild_reduced_costs() {
    reduced_ = cost_;
    for (int i = 0; i < rows_; ++i) {
      const double cb =
          cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
      if (cb == 0.0) continue;
      for (int j = 0; j < total_vars_; ++j) {
        reduced_[static_cast<std::size_t>(j)] -= cb * at(i, j);
      }
    }
  }

  /// Runs pivots until the current phase objective is optimal. Returns false
  /// when the iteration budget runs out (result.status is set).
  bool iterate(Solution& result) {
    int consecutive_degenerate = 0;
    const int bland_threshold = 2 * (rows_ + total_vars_) + 20;
    // Differential oracle: bounded by max_iterations, cancellation polled
    // by the driver at node granularity. fpva-lint: allow(missing-stop-poll)
    while (true) {
      if (iterations_ >= options_.max_iterations) {
        result.status = SolveStatus::kIterationLimit;
        result.iterations = iterations_;
        return false;
      }
      const bool bland = consecutive_degenerate > bland_threshold;

      // --- Pricing: pick the entering variable. ---
      int entering = -1;
      double best_violation = options_.tolerance;
      for (int j = 0; j < total_vars_; ++j) {
        const auto js = static_cast<std::size_t>(j);
        if (state_[js] == VarState::kBasic) continue;
        if (upper_[js] - lower_[js] <= 0.0) continue;  // fixed
        const double d = reduced_[js];
        double violation = 0.0;
        if (state_[js] == VarState::kAtLower && d < -options_.tolerance) {
          violation = -d;
        } else if (state_[js] == VarState::kAtUpper &&
                   d > options_.tolerance) {
          violation = d;
        } else {
          continue;
        }
        if (bland) {
          entering = j;
          break;
        }
        if (violation > best_violation) {
          best_violation = violation;
          entering = j;
        }
      }
      if (entering < 0) {
        return true;  // phase optimal
      }
      const auto q = static_cast<std::size_t>(entering);
      const double direction =
          state_[q] == VarState::kAtLower ? 1.0 : -1.0;

      // --- Ratio test. ---
      double best_t = upper_[q] - lower_[q];  // bound-flip limit
      int leaving_row = -1;
      double leaving_pivot = 0.0;
      for (int i = 0; i < rows_; ++i) {
        const double alpha = at(i, entering);
        if (std::abs(alpha) <= kPivotEpsilon) continue;
        const int basic = basis_[static_cast<std::size_t>(i)];
        const auto bs = static_cast<std::size_t>(basic);
        const double rate = direction * alpha;  // basic changes by -rate*t
        double t;
        if (rate > 0.0) {
          t = (x_[bs] - lower_[bs]) / rate;
        } else {
          t = (upper_[bs] - x_[bs]) / (-rate);
        }
        t = std::max(t, 0.0);
        const bool better =
            t < best_t - kPivotEpsilon ||
            (t < best_t + kPivotEpsilon && leaving_row >= 0 &&
             (bland ? basic < basis_[static_cast<std::size_t>(leaving_row)]
                    : std::abs(alpha) > std::abs(leaving_pivot)));
        if (leaving_row < 0 ? t < best_t + kPivotEpsilon : better) {
          best_t = std::min(best_t, t);
          leaving_row = i;
          leaving_pivot = alpha;
        }
      }

      const double t = std::max(best_t, 0.0);
      if (leaving_row < 0) {
        // Pure bound flip: entering jumps to its opposite bound.
        apply_step(entering, direction, t);
        x_[q] = direction > 0 ? upper_[q] : lower_[q];
        state_[q] = direction > 0 ? VarState::kAtUpper : VarState::kAtLower;
        ++iterations_;
        consecutive_degenerate = 0;
        continue;
      }

      // --- Pivot. ---
      apply_step(entering, direction, t);
      x_[q] += direction * t;
      const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
      const auto ls = static_cast<std::size_t>(leaving);
      const double rate = direction * leaving_pivot;
      if (rate > 0.0) {
        x_[ls] = lower_[ls];
        state_[ls] = VarState::kAtLower;
      } else {
        x_[ls] = upper_[ls];
        state_[ls] = VarState::kAtUpper;
      }
      state_[q] = VarState::kBasic;
      basis_[static_cast<std::size_t>(leaving_row)] = entering;
      pivot(leaving_row, entering);

      ++iterations_;
      if (t <= options_.tolerance) {
        ++consecutive_degenerate;
      } else {
        consecutive_degenerate = 0;
      }
    }
  }

  /// Moves every basic variable by -direction*t*alpha_i (entering updated by
  /// the caller).
  void apply_step(int entering, double direction, double t) {
    if (t == 0.0) return;
    for (int i = 0; i < rows_; ++i) {
      const double alpha = at(i, entering);
      if (alpha == 0.0) continue;
      const auto bs = static_cast<std::size_t>(
          basis_[static_cast<std::size_t>(i)]);
      x_[bs] -= direction * t * alpha;
      x_[bs] = std::min(std::max(x_[bs], lower_[bs]), upper_[bs]);
    }
  }

  /// Gauss-Jordan elimination on (pivot_row, pivot_col), including the
  /// reduced-cost row.
  void pivot(int pivot_row, int pivot_col) {
    const double pivot_value = at(pivot_row, pivot_col);
    common::check(std::abs(pivot_value) > kPivotEpsilon,
                  "simplex: numerically singular pivot");
    const double inverse = 1.0 / pivot_value;
    for (int j = 0; j < total_vars_; ++j) {
      at(pivot_row, j) *= inverse;
    }
    at(pivot_row, pivot_col) = 1.0;
    for (int i = 0; i < rows_; ++i) {
      if (i == pivot_row) continue;
      const double factor = at(i, pivot_col);
      if (factor == 0.0) continue;
      for (int j = 0; j < total_vars_; ++j) {
        at(i, j) -= factor * at(pivot_row, j);
      }
      at(i, pivot_col) = 0.0;
    }
    const double cost_factor = reduced_[static_cast<std::size_t>(pivot_col)];
    if (cost_factor != 0.0) {
      for (int j = 0; j < total_vars_; ++j) {
        reduced_[static_cast<std::size_t>(j)] -=
            cost_factor * at(pivot_row, j);
      }
      reduced_[static_cast<std::size_t>(pivot_col)] = 0.0;
    }
  }

  /// After phase 1: degenerate-pivots artificial variables out of the basis
  /// where possible; rows that resist are redundant and keep a fixed
  /// zero-valued artificial.
  void evict_basic_artificials() {
    for (int i = 0; i < rows_; ++i) {
      const int basic = basis_[static_cast<std::size_t>(i)];
      if (basic < first_artificial_) continue;
      int replacement = -1;
      for (int j = 0; j < first_artificial_; ++j) {
        if (state_[static_cast<std::size_t>(j)] == VarState::kBasic) continue;
        if (std::abs(at(i, j)) > 1e-6) {
          replacement = j;
          break;
        }
      }
      if (replacement < 0) continue;  // redundant row
      const auto q = static_cast<std::size_t>(replacement);
      const auto bs = static_cast<std::size_t>(basic);
      x_[bs] = 0.0;
      state_[bs] = VarState::kAtLower;
      state_[q] = VarState::kBasic;
      basis_[static_cast<std::size_t>(i)] = replacement;
      pivot(i, replacement);
      // The replacement keeps its current (bound) value; the pivot is
      // degenerate because the artificial sat at zero.
    }
  }

  const Model& model_;
  const SolveOptions& options_;

  int rows_ = 0;
  int total_vars_ = 0;
  int first_artificial_ = 0;
  int artificial_count_ = 0;
  long iterations_ = 0;

  std::vector<double> dense_rows_;
  std::vector<double> rhs_;
  std::vector<double> tableau_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> x_;
  std::vector<double> cost_;
  std::vector<double> reduced_;
  std::vector<VarState> state_;
  std::vector<int> basis_;
  std::vector<double> artificial_sign_;
};

}  // namespace

Solution solve(const Model& model, const SolveOptions& options) {
  if (options.algorithm == Algorithm::kRevised) {
    RevisedSimplex revised(model, options);
    Solution solution = revised.solve_cold();
    if (!revised.numerical_trouble()) return solution;
    common::log_warning(
        "lp::solve: revised simplex gave up on numerics; retrying dense");
  }
  SimplexSolver solver(model, options);
  return solver.run();
}

}  // namespace fpva::lp
