// Linear-program model container.
//
// Minimization over variables with finite bounds, subject to linear
// constraints with <=, >= or = sense. The FPVA path/cut ILP models of the
// paper (constraints (1)-(4), (6), (9)) are naturally bounded -- binaries
// and big-M-bounded flows -- so the solver requires finite bounds on every
// variable and in exchange can never be unbounded.
#ifndef FPVA_LP_MODEL_H
#define FPVA_LP_MODEL_H

#include <string>
#include <vector>

namespace fpva::lp {

/// Constraint sense.
enum class Sense { kLessEqual, kGreaterEqual, kEqual };

/// One linear term: coefficient * variable.
struct Term {
  int variable = 0;
  double coefficient = 0.0;
};

/// A linear constraint sum(terms) sense rhs.
struct Constraint {
  std::vector<Term> terms;
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

/// Variable metadata.
struct Variable {
  double lower = 0.0;
  double upper = 0.0;
  double objective = 0.0;
  std::string name;
};

/// Mutable LP model; feed to lp::solve() (simplex.h).
class Model {
 public:
  /// Adds a variable with finite bounds [lower, upper] and the given
  /// objective coefficient (minimization). Returns its index.
  int add_variable(double lower, double upper, double objective,
                   std::string name = {});

  /// Overwrites the bounds of `variable`.
  void set_bounds(int variable, double lower, double upper);

  /// Overwrites the objective coefficient of `variable`.
  void set_objective(int variable, double objective);

  /// Adds a constraint; terms may repeat variables (they are summed).
  /// Returns the constraint index.
  int add_constraint(std::vector<Term> terms, Sense sense, double rhs);

  int variable_count() const { return static_cast<int>(variables_.size()); }
  int constraint_count() const {
    return static_cast<int>(constraints_.size());
  }

  const Variable& variable(int index) const;
  const Constraint& constraint(int index) const;

  /// Objective value of a full assignment (no feasibility check).
  double objective_value(const std::vector<double>& values) const;

  /// Maximum constraint violation of a full assignment; 0 means feasible.
  double max_violation(const std::vector<double>& values) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

}  // namespace fpva::lp

#endif  // FPVA_LP_MODEL_H
