#include "lp/lu_factorization.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fpva::lp {

namespace {

/// Candidate columns examined per Markowitz pivot step before widening to a
/// full scan; bounds the search without giving up the fill-minimizing pick.
constexpr int kPivotCandidateCap = 64;

}  // namespace

void LuFactorization::clear_factor() {
  lcols_.clear();
  l_rows_.clear();
  l_vals_.clear();
  retas_.clear();
  r_rows_.clear();
  r_vals_.clear();
  const auto m = static_cast<std::size_t>(m_);
  u_cols_.assign(m, {});
  u_vals_.assign(m, {});
  u_col_rows_.assign(m, {});
  diag_.assign(m, 0.0);
  row_of_order_.assign(m, -1);
  col_of_order_.assign(m, -1);
  order_of_row_.assign(m, -1);
  order_of_col_.assign(m, -1);
  acc_.assign(m, 0.0);
  stamp_.assign(m, 0);
  epoch_ = 0;
  pos_.assign(m, 0);
  pos_stamp_.assign(m, 0);
  pos_epoch_ = 0;
  spike_.assign(m, 0.0);
  spike_rows_.clear();
  spike_valid_ = false;
  updates_ = 0;
  nnz_ = 0;
  factor_nnz_ = 0;
}

double LuFactorization::w_entry(int row, int col) const {
  const auto& cols = w_row_cols_[static_cast<std::size_t>(row)];
  for (std::size_t s = 0; s < cols.size(); ++s) {
    if (cols[s] == col) {
      return w_row_vals_[static_cast<std::size_t>(row)][s];
    }
  }
  return 0.0;
}

bool LuFactorization::select_pivot(int* pivot_row, int* pivot_col) const {
  // Two passes: first over columns whose count is within 3 of the minimum
  // (capped), then — only if nothing stable was found — over every active
  // column. Markowitz cost (r-1)*(c-1) with threshold partial pivoting;
  // ties prefer the larger pivot, then the lower column and row index, so
  // the factorization is deterministic.
  int min_count = std::numeric_limits<int>::max();
  for (int j = 0; j < m_; ++j) {
    if (!w_col_active_[static_cast<std::size_t>(j)]) continue;
    const int count =
        static_cast<int>(w_col_rows_[static_cast<std::size_t>(j)].size());
    if (count == 0) return false;  // structurally singular
    min_count = std::min(min_count, count);
  }
  if (min_count == std::numeric_limits<int>::max()) return false;

  for (int pass = 0; pass < 2; ++pass) {
    const int count_cap =
        pass == 0 ? min_count + 3 : std::numeric_limits<int>::max();
    long long best_cost = std::numeric_limits<long long>::max();
    double best_mag = 0.0;
    int best_row = -1, best_col = -1;
    int scanned = 0;
    for (int j = 0; j < m_ && (pass == 1 || scanned < kPivotCandidateCap);
         ++j) {
      const auto js = static_cast<std::size_t>(j);
      if (!w_col_active_[js]) continue;
      const auto& rows = w_col_rows_[js];
      const int col_count = static_cast<int>(rows.size());
      if (col_count > count_cap) continue;
      ++scanned;
      double col_max = 0.0;
      for (const int i : rows) {
        col_max = std::max(col_max, std::abs(w_entry(i, j)));
      }
      if (col_max <= options_.singular_tolerance) continue;
      const double acceptable = options_.pivot_tolerance * col_max;
      for (const int i : rows) {
        const double v = w_entry(i, j);
        const double mag = std::abs(v);
        if (mag < acceptable || mag <= options_.singular_tolerance) continue;
        const int row_count =
            static_cast<int>(w_row_cols_[static_cast<std::size_t>(i)].size());
        const long long cost = static_cast<long long>(row_count - 1) *
                               static_cast<long long>(col_count - 1);
        const bool better =
            cost < best_cost ||
            (cost == best_cost &&
             (mag > best_mag ||
              (mag == best_mag &&
               (j < best_col || (j == best_col && i < best_row)))));
        if (better) {
          best_cost = cost;
          best_mag = mag;
          best_row = i;
          best_col = j;
        }
      }
    }
    if (best_row >= 0) {
      *pivot_row = best_row;
      *pivot_col = best_col;
      return true;
    }
  }
  return false;
}

bool LuFactorization::factorize(int m, const std::vector<BasisColumn>& columns) {
  m_ = m;
  valid_ = false;
  clear_factor();
  const auto ms = static_cast<std::size_t>(m);

  // Load the working matrix row-wise with a column-pattern transpose.
  w_row_cols_.assign(ms, {});
  w_row_vals_.assign(ms, {});
  w_col_rows_.assign(ms, {});
  w_row_active_.assign(ms, 1);
  w_col_active_.assign(ms, 1);
  for (int p = 0; p < m; ++p) {
    const BasisColumn& column = columns[static_cast<std::size_t>(p)];
    for (int k = 0; k < column.size; ++k) {
      const int row = column.rows[k];
      const double value = column.values[k];
      if (value == 0.0) continue;
      w_row_cols_[static_cast<std::size_t>(row)].push_back(p);
      w_row_vals_[static_cast<std::size_t>(row)].push_back(value);
      w_col_rows_[static_cast<std::size_t>(p)].push_back(row);
    }
  }

  std::vector<int> targets;  // col-pattern copy (patterns mutate below)
  for (int step = 0; step < m; ++step) {
    int pivot_row = -1, pivot_col = -1;
    if (!select_pivot(&pivot_row, &pivot_col)) return false;
    const auto rs = static_cast<std::size_t>(pivot_row);
    const auto cs = static_cast<std::size_t>(pivot_col);
    const double pivot = w_entry(pivot_row, pivot_col);

    row_of_order_[static_cast<std::size_t>(step)] = pivot_row;
    col_of_order_[static_cast<std::size_t>(step)] = pivot_col;
    order_of_row_[rs] = step;
    order_of_col_[cs] = step;
    diag_[rs] = pivot;

    // Scatter the pivot row (minus the pivot entry) for the combines.
    ++epoch_;
    for (std::size_t s = 0; s < w_row_cols_[rs].size(); ++s) {
      const int c2 = w_row_cols_[rs][s];
      if (c2 == pivot_col) continue;
      acc_[static_cast<std::size_t>(c2)] = w_row_vals_[rs][s];
      stamp_[static_cast<std::size_t>(c2)] = epoch_;
    }

    targets.clear();
    for (const int i : w_col_rows_[cs]) {
      if (i != pivot_row) targets.push_back(i);
    }
    std::sort(targets.begin(), targets.end());

    const int l_start = static_cast<int>(l_rows_.size());
    for (const int i : targets) {
      const auto is = static_cast<std::size_t>(i);
      const double mult = w_entry(i, pivot_col) / pivot;
      if (std::abs(mult) > options_.drop_tolerance) {
        l_rows_.push_back(i);
        l_vals_.push_back(mult);
        // Combine: row_i -= mult * (active part of the pivot row).
        ++pos_epoch_;
        for (std::size_t s = 0; s < w_row_cols_[is].size(); ++s) {
          const auto c2 = static_cast<std::size_t>(w_row_cols_[is][s]);
          pos_[c2] = static_cast<int>(s);
          pos_stamp_[c2] = pos_epoch_;
        }
        for (std::size_t s = 0; s < w_row_cols_[rs].size(); ++s) {
          const int c2 = w_row_cols_[rs][s];
          if (c2 == pivot_col) continue;
          const auto c2s = static_cast<std::size_t>(c2);
          const double delta = mult * w_row_vals_[rs][s];
          if (pos_stamp_[c2s] == pos_epoch_) {
            w_row_vals_[is][static_cast<std::size_t>(pos_[c2s])] -= delta;
          } else if (std::abs(delta) > options_.drop_tolerance) {
            w_row_cols_[is].push_back(c2);
            w_row_vals_[is].push_back(-delta);
            w_col_rows_[c2s].push_back(i);
          }
        }
      }
      // Compress row i: drop the pivot-column entry and anything tiny.
      std::size_t out = 0;
      for (std::size_t s = 0; s < w_row_cols_[is].size(); ++s) {
        const int c2 = w_row_cols_[is][s];
        const double v = w_row_vals_[is][s];
        if (c2 == pivot_col) continue;  // col pattern cleared wholesale below
        if (std::abs(v) <= options_.drop_tolerance) {
          auto& rows = w_col_rows_[static_cast<std::size_t>(c2)];
          rows.erase(std::find(rows.begin(), rows.end(), i));
          continue;
        }
        w_row_cols_[is][out] = c2;
        w_row_vals_[is][out] = v;
        ++out;
      }
      w_row_cols_[is].resize(out);
      w_row_vals_[is].resize(out);
    }
    if (static_cast<int>(l_rows_.size()) > l_start) {
      lcols_.push_back(
          {pivot_row, l_start, static_cast<int>(l_rows_.size())});
    }

    // Freeze the pivot row: its remaining entries become U row pivot_row.
    std::size_t out = 0;
    for (std::size_t s = 0; s < w_row_cols_[rs].size(); ++s) {
      const int c2 = w_row_cols_[rs][s];
      if (c2 == pivot_col) continue;
      auto& rows = w_col_rows_[static_cast<std::size_t>(c2)];
      rows.erase(std::find(rows.begin(), rows.end(), pivot_row));
      w_row_cols_[rs][out] = c2;
      w_row_vals_[rs][out] = w_row_vals_[rs][s];
      ++out;
    }
    w_row_cols_[rs].resize(out);
    w_row_vals_[rs].resize(out);
    w_col_rows_[cs].clear();
    w_row_active_[rs] = 0;
    w_col_active_[cs] = 0;
  }

  // The frozen rows are exactly U; steal their storage.
  u_cols_ = std::move(w_row_cols_);
  u_vals_ = std::move(w_row_vals_);
  w_row_cols_.clear();
  w_row_vals_.clear();
  for (int r = 0; r < m; ++r) {
    for (const int c : u_cols_[static_cast<std::size_t>(r)]) {
      u_col_rows_[static_cast<std::size_t>(c)].push_back(r);
    }
  }

  nnz_ = static_cast<long>(l_rows_.size()) + m;
  for (int r = 0; r < m; ++r) {
    nnz_ += static_cast<long>(u_cols_[static_cast<std::size_t>(r)].size());
  }
  factor_nnz_ = nnz_;
  valid_ = true;
  return true;
}

void LuFactorization::ftran(std::vector<double>& dense,
                            bool save_spike) const {
  for (const LCol& lc : lcols_) {
    const double t = dense[static_cast<std::size_t>(lc.pivot_row)];
    if (t == 0.0) continue;
    for (int k = lc.start; k < lc.end; ++k) {
      dense[static_cast<std::size_t>(l_rows_[static_cast<std::size_t>(k)])] -=
          l_vals_[static_cast<std::size_t>(k)] * t;
    }
  }
  for (const RowEta& re : retas_) {
    double s = dense[static_cast<std::size_t>(re.target_row)];
    for (int k = re.start; k < re.end; ++k) {
      s -= r_vals_[static_cast<std::size_t>(k)] *
           dense[static_cast<std::size_t>(r_rows_[static_cast<std::size_t>(k)])];
    }
    dense[static_cast<std::size_t>(re.target_row)] = s;
  }
  if (save_spike) {
    spike_rows_.clear();
    std::fill(spike_.begin(), spike_.end(), 0.0);
    for (int i = 0; i < m_; ++i) {
      const double v = dense[static_cast<std::size_t>(i)];
      if (v != 0.0) {
        spike_[static_cast<std::size_t>(i)] = v;
        spike_rows_.push_back(i);
      }
    }
    spike_valid_ = true;
  }
  // Back substitution U x = y, walking pivots last-to-first.
  work_.assign(static_cast<std::size_t>(m_), 0.0);
  for (int k = m_ - 1; k >= 0; --k) {
    const auto r =
        static_cast<std::size_t>(row_of_order_[static_cast<std::size_t>(k)]);
    const auto c =
        static_cast<std::size_t>(col_of_order_[static_cast<std::size_t>(k)]);
    double s = dense[r];
    const auto& cols = u_cols_[r];
    const auto& vals = u_vals_[r];
    for (std::size_t t = 0; t < cols.size(); ++t) {
      s -= vals[t] * work_[static_cast<std::size_t>(cols[t])];
    }
    work_[c] = s / diag_[r];
  }
  std::copy(work_.begin(), work_.end(), dense.begin());
}

void LuFactorization::btran(std::vector<double>& dense) const {
  // Forward substitution U^T z = c, scattering each solved row.
  work_.assign(static_cast<std::size_t>(m_), 0.0);
  for (int k = 0; k < m_; ++k) {
    const auto r =
        static_cast<std::size_t>(row_of_order_[static_cast<std::size_t>(k)]);
    const auto c =
        static_cast<std::size_t>(col_of_order_[static_cast<std::size_t>(k)]);
    const double z = dense[c] / diag_[r];
    work_[r] = z;
    if (z == 0.0) continue;
    const auto& cols = u_cols_[r];
    const auto& vals = u_vals_[r];
    for (std::size_t t = 0; t < cols.size(); ++t) {
      dense[static_cast<std::size_t>(cols[t])] -= vals[t] * z;
    }
  }
  // Transposed row etas, newest first.
  for (auto it = retas_.rbegin(); it != retas_.rend(); ++it) {
    const double t = work_[static_cast<std::size_t>(it->target_row)];
    if (t == 0.0) continue;
    for (int k = it->start; k < it->end; ++k) {
      work_[static_cast<std::size_t>(r_rows_[static_cast<std::size_t>(k)])] -=
          r_vals_[static_cast<std::size_t>(k)] * t;
    }
  }
  // Transposed elimination columns, newest first.
  for (auto it = lcols_.rbegin(); it != lcols_.rend(); ++it) {
    double s = 0.0;
    for (int k = it->start; k < it->end; ++k) {
      s += l_vals_[static_cast<std::size_t>(k)] *
           work_[static_cast<std::size_t>(l_rows_[static_cast<std::size_t>(k)])];
    }
    work_[static_cast<std::size_t>(it->pivot_row)] -= s;
  }
  std::copy(work_.begin(), work_.end(), dense.begin());
}

void LuFactorization::erase_u_entry(int row, int col) {
  auto& cols = u_cols_[static_cast<std::size_t>(row)];
  auto& vals = u_vals_[static_cast<std::size_t>(row)];
  for (std::size_t s = 0; s < cols.size(); ++s) {
    if (cols[s] == col) {
      cols[s] = cols.back();
      vals[s] = vals.back();
      cols.pop_back();
      vals.pop_back();
      return;
    }
  }
}

void LuFactorization::erase_u_col_row(int col, int row) {
  auto& rows = u_col_rows_[static_cast<std::size_t>(col)];
  for (std::size_t s = 0; s < rows.size(); ++s) {
    if (rows[s] == row) {
      rows[s] = rows.back();
      rows.pop_back();
      return;
    }
  }
}

bool LuFactorization::update(int position, double pivot_value) {
  if (!valid_ || !spike_valid_) {
    valid_ = false;
    return false;
  }
  const int t = order_of_col_[static_cast<std::size_t>(position)];
  const int r = row_of_order_[static_cast<std::size_t>(t)];
  const auto rs = static_cast<std::size_t>(r);
  const auto ps = static_cast<std::size_t>(position);
  const double old_diag = diag_[rs];

  // Drop the replaced column of U.
  for (const int i : u_col_rows_[ps]) {
    erase_u_entry(i, position);
    --nnz_;
  }
  u_col_rows_[ps].clear();

  // Capture the pivot row into the accumulator and detach it from U.
  ++epoch_;
  for (std::size_t s = 0; s < u_cols_[rs].size(); ++s) {
    const auto c2 = static_cast<std::size_t>(u_cols_[rs][s]);
    acc_[c2] = u_vals_[rs][s];
    stamp_[c2] = epoch_;
    erase_u_col_row(u_cols_[rs][s], r);
    --nnz_;
  }
  u_cols_[rs].clear();
  u_vals_[rs].clear();

  // Scatter the spike: off-pivot rows gain a U entry in `position`; the
  // pivot row's spike entry seeds the new diagonal.
  acc_[ps] = 0.0;
  stamp_[ps] = epoch_;
  for (const int i : spike_rows_) {
    const double v = spike_[static_cast<std::size_t>(i)];
    if (std::abs(v) <= options_.drop_tolerance) continue;
    if (i == r) {
      acc_[ps] = v;
      continue;
    }
    u_cols_[static_cast<std::size_t>(i)].push_back(position);
    u_vals_[static_cast<std::size_t>(i)].push_back(v);
    u_col_rows_[ps].push_back(i);
    ++nnz_;
  }
  spike_valid_ = false;

  // Cyclic shift: orders (t, m) move down one, the updated pivot goes last.
  for (int k = t; k < m_ - 1; ++k) {
    const int nr = row_of_order_[static_cast<std::size_t>(k) + 1];
    const int nc = col_of_order_[static_cast<std::size_t>(k) + 1];
    row_of_order_[static_cast<std::size_t>(k)] = nr;
    col_of_order_[static_cast<std::size_t>(k)] = nc;
    order_of_row_[static_cast<std::size_t>(nr)] = k;
    order_of_col_[static_cast<std::size_t>(nc)] = k;
  }
  row_of_order_[static_cast<std::size_t>(m_) - 1] = r;
  col_of_order_[static_cast<std::size_t>(m_) - 1] = position;
  order_of_row_[rs] = m_ - 1;
  order_of_col_[ps] = m_ - 1;

  // Eliminate the detached row against the pivots it now trails, recording
  // the multipliers as one Forrest-Tomlin row eta.
  const int reta_start = static_cast<int>(r_rows_.size());
  for (int k = t; k < m_ - 1; ++k) {
    const auto cj =
        static_cast<std::size_t>(col_of_order_[static_cast<std::size_t>(k)]);
    if (stamp_[cj] != epoch_) continue;
    const double v = acc_[cj];
    if (std::abs(v) <= options_.drop_tolerance) continue;
    const auto rj =
        static_cast<std::size_t>(row_of_order_[static_cast<std::size_t>(k)]);
    const double mult = v / diag_[rj];
    r_rows_.push_back(static_cast<int>(rj));
    r_vals_.push_back(mult);
    const auto& cols = u_cols_[rj];
    const auto& vals = u_vals_[rj];
    for (std::size_t s = 0; s < cols.size(); ++s) {
      const auto c2 = static_cast<std::size_t>(cols[s]);
      if (stamp_[c2] == epoch_) {
        acc_[c2] -= mult * vals[s];
      } else {
        acc_[c2] = -mult * vals[s];
        stamp_[c2] = epoch_;
      }
    }
  }

  const double new_diag = stamp_[ps] == epoch_ ? acc_[ps] : 0.0;
  const int reta_end = static_cast<int>(r_rows_.size());
  if (std::abs(new_diag) <= options_.singular_tolerance) {
    valid_ = false;
    return false;
  }
  // Determinant identity: the new diagonal must equal old_diag * alpha_p.
  const double expected = old_diag * pivot_value;
  const double err = std::abs(new_diag - expected);
  if (err > options_.stability_tolerance *
                std::max({1.0, std::abs(new_diag), std::abs(expected)})) {
    valid_ = false;
    return false;
  }
  diag_[rs] = new_diag;
  if (reta_end > reta_start) {
    retas_.push_back({r, reta_start, reta_end});
    nnz_ += reta_end - reta_start;
  }
  ++updates_;
  return true;
}

bool LuFactorization::add_row(const std::vector<int>& positions,
                              const std::vector<double>& values) {
  if (!valid_) return false;
  // Solve U^T w = a; w becomes the row eta tying the new row to the old
  // factors (B_new = [[L,0],[w^T,1]] * [[U,0],[0,1]]).
  work2_.assign(static_cast<std::size_t>(m_), 0.0);
  for (std::size_t k = 0; k < positions.size(); ++k) {
    work2_[static_cast<std::size_t>(positions[k])] = values[k];
  }
  acc_.assign(static_cast<std::size_t>(m_), 0.0);
  for (int k = 0; k < m_; ++k) {
    const auto r =
        static_cast<std::size_t>(row_of_order_[static_cast<std::size_t>(k)]);
    const auto c =
        static_cast<std::size_t>(col_of_order_[static_cast<std::size_t>(k)]);
    const double z = work2_[c] / diag_[r];
    acc_[r] = z;
    if (z == 0.0) continue;
    const auto& cols = u_cols_[r];
    const auto& vals = u_vals_[r];
    for (std::size_t s = 0; s < cols.size(); ++s) {
      work2_[static_cast<std::size_t>(cols[s])] -= vals[s] * z;
    }
  }
  const int reta_start = static_cast<int>(r_rows_.size());
  for (int i = 0; i < m_; ++i) {
    const double w = acc_[static_cast<std::size_t>(i)];
    if (std::abs(w) <= options_.drop_tolerance) continue;
    r_rows_.push_back(i);
    r_vals_.push_back(w);
  }
  const int reta_end = static_cast<int>(r_rows_.size());
  if (reta_end > reta_start) {
    retas_.push_back({m_, reta_start, reta_end});
    nnz_ += reta_end - reta_start;
  }

  // Grow every per-row / per-position structure by the new unit pivot.
  diag_.push_back(1.0);
  u_cols_.emplace_back();
  u_vals_.emplace_back();
  u_col_rows_.emplace_back();
  row_of_order_.push_back(m_);
  col_of_order_.push_back(m_);
  order_of_row_.push_back(m_);
  order_of_col_.push_back(m_);
  acc_.push_back(0.0);
  stamp_.push_back(0);
  spike_.push_back(0.0);
  spike_valid_ = false;
  ++m_;
  ++updates_;
  ++nnz_;
  return true;
}

bool LuFactorization::needs_refactor() const {
  if (!valid_) return true;
  if (updates_ >= options_.max_updates) return true;
  return static_cast<double>(nnz_) >
         options_.fill_ratio * static_cast<double>(factor_nnz_) +
             static_cast<double>(m_);
}

}  // namespace fpva::lp
