// Two-phase bounded-variable primal simplex.
//
// Dense tableau implementation suitable for the subblock-sized models the
// hierarchical test generator produces (hundreds of variables). Phase 1
// minimizes artificial-variable infeasibility, phase 2 the real objective.
// Because lp::Model requires finite bounds on every variable (and slack caps
// are derived from those bounds), the LP can never be unbounded.
#ifndef FPVA_LP_SIMPLEX_H
#define FPVA_LP_SIMPLEX_H

#include <vector>

#include "lp/model.h"

namespace fpva::lp {

enum class SolveStatus {
  kOptimal,         ///< optimal basic solution found
  kInfeasible,      ///< phase 1 could not reach zero infeasibility
  kIterationLimit,  ///< pivot budget exhausted
};

struct SolveOptions {
  long max_iterations = 200000;  ///< total pivot budget over both phases
  double tolerance = 1e-7;       ///< feasibility/optimality tolerance
};

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< structural variable values (on success)
  long iterations = 0;         ///< pivots performed
};

/// Solves `model` to optimality (minimization).
Solution solve(const Model& model, const SolveOptions& options = {});

}  // namespace fpva::lp

#endif  // FPVA_LP_SIMPLEX_H
