// Two-phase bounded-variable primal simplex.
//
// Dense tableau implementation suitable for the subblock-sized models the
// hierarchical test generator produces (hundreds of variables). Phase 1
// minimizes artificial-variable infeasibility, phase 2 the real objective.
// Because lp::Model requires finite bounds on every variable (and slack caps
// are derived from those bounds), the LP can never be unbounded.
#ifndef FPVA_LP_SIMPLEX_H
#define FPVA_LP_SIMPLEX_H

#include <vector>

#include "lp/model.h"

namespace fpva::lp {

enum class SolveStatus {
  kOptimal,         ///< optimal basic solution found
  kInfeasible,      ///< phase 1 could not reach zero infeasibility
  kIterationLimit,  ///< pivot budget exhausted
};

/// Which engine lp::solve routes through.
enum class Algorithm {
  kRevised,       ///< revised simplex, factorized basis (revised_simplex.h)
  kDenseTableau,  ///< legacy dense two-phase tableau (retained as oracle)
};

/// Entering/leaving-candidate selection rule of the revised simplex. The
/// dense tableau always prices with Dantzig and ignores this option.
enum class Pricing {
  kDantzig,  ///< most-violated reduced cost (differential-testing oracle)
  kDevex,    ///< devex reference-framework weights (primal and dual)
};

/// Basis factorization of the revised simplex. The dense tableau carries
/// its own explicit inverse and ignores this option.
enum class Factorization {
  /// Markowitz-pivoted sparse LU with Forrest-Tomlin column updates:
  /// bounded fill, refactorization on fill/instability thresholds, and
  /// warm row addition for cutting loops (lp/lu_factorization.h).
  kForrestTomlin,
  /// Product-form eta file with a fixed refactor interval — the original
  /// engine, retained as the differential-testing oracle.
  kEta,
};

struct SolveOptions {
  long max_iterations = 200000;  ///< total pivot budget over both phases
  double tolerance = 1e-7;       ///< feasibility/optimality tolerance
  Algorithm algorithm = Algorithm::kRevised;
  Pricing pricing = Pricing::kDevex;
  Factorization factorization = Factorization::kForrestTomlin;
  /// Forrest-Tomlin updates tolerated before a refactorization is
  /// scheduled (the eta file keeps its fixed every-64 interval).
  int refactor_update_limit = 100;
  /// Refactorize when the LU operator file grows past this multiple of
  /// the fresh-factor nonzeros.
  double refactor_fill_ratio = 3.0;
  /// Fill Solution::row_duals / reduced_costs on optimal exits of the
  /// revised engine. Costs an extra BTRAN plus a pricing pass per solve,
  /// so it is off unless the caller consumes duals (LP conflict learning).
  bool want_duals = false;
};

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< structural variable values (on success)
  long iterations = 0;         ///< pivots performed
  /// Exact row duals y (one per constraint) on kOptimal, revised engine
  /// only and only when SolveOptions::want_duals is set; empty otherwise
  /// (the dense tableau never fills them). Signs follow y^T A <= c
  /// aggregation: y_i >= 0 on <= rows would NOT hold in general — these
  /// are unrestricted equality-style duals of the bounded-variable system.
  std::vector<double> row_duals;
  /// Structural reduced costs d_j = c_j - y^T A_j, same availability as
  /// row_duals.
  std::vector<double> reduced_costs;
  /// Farkas/dual-ray certificate of primal infeasibility: weights w (one
  /// per constraint row) filled on kInfeasible exits of the revised
  /// engine's dual simplex or phase 1. Sign convention: w_i >= 0 on <=
  /// rows, w_i <= 0 on >= rows, free on = rows, so the aggregate
  /// g = w^T A, g0 = w^T b is a valid inequality g.x <= g0 whose minimum
  /// activity over the variable bounds exceeds g0. Callers must verify
  /// that numerically before trusting the ray. Empty when unavailable.
  std::vector<double> farkas_ray;
};

/// Solves `model` to optimality (minimization). Dispatches on
/// `options.algorithm`; the revised engine falls back to the dense tableau
/// when it detects numerical trouble, so callers see at most one of
/// kOptimal / kInfeasible / kIterationLimit either way.
Solution solve(const Model& model, const SolveOptions& options = {});

}  // namespace fpva::lp

#endif  // FPVA_LP_SIMPLEX_H
