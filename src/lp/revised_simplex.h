// Revised bounded-variable simplex with a factorized basis and warm starts.
//
// Unlike the dense tableau solver (simplex.cpp), this engine keeps the basis
// as a product-form eta file over a sparse column copy of the constraint
// matrix, so one pivot costs O(nnz) instead of O(rows * columns). It is
// built for branch-and-bound: after a handful of bound changes the previous
// optimal basis stays dual feasible, and reoptimize() runs the dual simplex
// from that basis instead of a two-phase cold start — typically a couple of
// pivots per node instead of a full solve.
//
// The solver owns a private copy of the variable bounds; set_bounds()
// mutates that copy only, never the source model, so one RevisedSimplex can
// serve every node of a search tree over the same structural matrix.
#ifndef FPVA_LP_REVISED_SIMPLEX_H
#define FPVA_LP_REVISED_SIMPLEX_H

#include <cstdint>
#include <vector>

#include "lp/lu_factorization.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace fpva::lp {

/// Reusable basis checkpoint (see RevisedSimplex::snapshot_basis). The
/// snapshot pins the row count it was taken at; restoring into a solver
/// whose row set has since grown (warm row addition) is rejected.
struct BasisSnapshot {
  int rows = 0;
  std::vector<int> basis;
  std::vector<std::uint8_t> state;
};

/// Incremental revised simplex over a fixed constraint matrix.
class RevisedSimplex {
 public:
  /// Snapshots the structure and bounds of `model`. The model must outlive
  /// the solver only through this constructor; no reference is retained.
  explicit RevisedSimplex(const Model& model, SolveOptions options = {});

  /// Overwrites the solver's private bounds of structural `variable`.
  /// Invalidates primal values but keeps the factorized basis for a
  /// dual-simplex reoptimize.
  void set_bounds(int variable, double lower, double upper);

  /// Current private bounds (reflects set_bounds calls).
  double lower_bound(int variable) const;
  double upper_bound(int variable) const;

  /// Solves from scratch: two-phase primal simplex off a fresh slack basis.
  Solution solve_cold();

  /// Reoptimizes after set_bounds() calls. Uses the dual simplex from the
  /// stored basis when one exists and stays numerically healthy; falls back
  /// to solve_cold() otherwise (including on the first call).
  Solution reoptimize();

  /// True once a solve left behind a reusable (dual-feasible) basis.
  bool has_basis() const { return basis_valid_; }

  /// Replaces the per-solve pivot budget (branch-and-bound grows it when a
  /// node LP runs out of pivots).
  void set_iteration_limit(long limit) { options_.max_iterations = limit; }

  /// True when the last solve gave up on numerics rather than on the pivot
  /// budget; the caller should re-solve through the dense tableau oracle.
  bool numerical_trouble() const { return numerics_failed_; }

  /// Cumulative pivot count over the lifetime of the solver.
  long total_iterations() const { return total_iterations_; }

  /// Appends a constraint row to the solver's private copy of the model
  /// (duplicate terms are merged; terms must reference structural
  /// variables). Under the Forrest-Tomlin factorization a valid basis is
  /// extended in place — the new slack enters the basis and the next
  /// reoptimize() repairs primal feasibility with dual pivots. Under the
  /// eta factorization the stored basis is dropped and the next solve
  /// cold-starts.
  void add_row(const std::vector<Term>& terms, Sense sense, double rhs);

  int row_count() const { return m_; }

  /// Checkpoint of the current basis; valid only when has_basis().
  BasisSnapshot snapshot_basis() const;

  /// Adopts `snapshot` (bounds are kept as-is) and refactorizes. Returns
  /// false — leaving no reusable basis — when the snapshot's row count no
  /// longer matches or the basis went numerically singular. Restoring a
  /// snapshot identical to the live basis (common for assertion-level
  /// restores after a branch-and-bound backjump) is a no-op.
  bool restore_basis(const BasisSnapshot& snapshot);

  /// Basis factorizations built over the lifetime of the solver.
  long refactorizations() const { return refactorizations_; }
  /// Forrest-Tomlin column updates applied (0 under the eta file).
  long basis_updates() const { return basis_updates_; }
  /// Rows appended while a factorized basis was live.
  long warm_rows_added() const { return warm_rows_added_; }

  /// Times the recovery ladder demoted this instance from Forrest-Tomlin
  /// to the eta file after a numerically failed two-phase solve (0 or 1:
  /// the demotion is sticky for the instance's lifetime).
  long eta_fallbacks() const { return eta_fallbacks_; }

 private:
  enum class VarState : std::uint8_t { kBasic, kAtLower, kAtUpper };

  /// One product-form update. Off-pivot entries live in the shared
  /// eta_index_/eta_value_ arena (one flat allocation instead of two small
  /// vectors per pivot, and sequential memory during FTRAN/BTRAN sweeps).
  struct Eta {
    int pivot_row = 0;
    int start = 0;             ///< first arena slot
    int end = 0;               ///< one past the last arena slot
    double pivot_value = 1.0;  ///< eta coefficient of the pivot row
  };

  // --- structure -----------------------------------------------------------
  void build_columns(const Model& model);
  int column_nnz(int var) const;
  double column_dot(int var, const std::vector<double>& dense) const;

  // --- factorization -------------------------------------------------------
  bool lu() const { return options_.factorization == Factorization::kForrestTomlin; }
  bool refactorize();  ///< rebuilds the factorization; false = singular
  bool refactorize_eta();
  bool refactorize_lu();
  void ftran(std::vector<double>& dense) const;  ///< dense := B^-1 dense
  /// FTRAN of the entering column: under LU the partial result is stashed
  /// so factor_update() can fold it into U.
  void ftran_entering(std::vector<double>& dense) const;
  void btran(std::vector<double>& dense) const;  ///< dense := B^-T dense
  /// Records the pivot in the factorization (eta append or Forrest-Tomlin
  /// update; refactorizes on an unstable update). Must run after basis_ /
  /// state_ are updated. Returns false on fatal numerics; sets
  /// factor_rebuilt_ when it refactorized as a side effect.
  bool factor_update(int pivot_row, double pivot_value,
                     const std::vector<double>& alpha,
                     const std::vector<int>& alpha_pattern);
  bool factor_is_stale() const;     ///< updates applied since the last factor
  bool factor_needs_refresh() const;  ///< policy says refactorize now
  void append_eta(int pivot_row, const std::vector<double>& alpha,
                  const std::vector<int>& alpha_pattern);
  void load_column(int var, std::vector<double>& dense,
                   std::vector<int>& pattern) const;
  void rebuild_csc();  ///< regenerate the CSC mirror from the CSR rows
  /// Applies deferred add_row bookkeeping (CSC mirror, scratch sizes)
  /// once per batch of appended rows, at the next solve entry point.
  void flush_row_additions();

  // --- simplex -------------------------------------------------------------
  void reset_to_slack_basis();
  void reset_to_dual_crash();
  Solution reoptimize_from_basis();
  void compute_basic_values();
  void compute_duals(std::vector<double>& y) const;
  double reduced_cost(int var, const std::vector<double>& y) const;
  /// Copies the BTRAN'd violated-row vector into result.farkas_ray with the
  /// orientation the Solution sign convention requires (`below` = the
  /// leaving basic sat under its lower bound).
  void fill_farkas_ray(const std::vector<double>& rho, bool below,
                       Solution& result) const;
  bool price(const std::vector<double>& y, bool bland, int* entering,
             double* violation) const;
  /// Fills `result` with the current (bound-clamped) structural point and
  /// its objective computed from `objective_` — never from the active
  /// phase/perturbed `cost_` vector.
  void fill_primal_point(Solution& result) const;
  // --- devex ---------------------------------------------------------------
  bool devex() const { return options_.pricing == Pricing::kDevex; }
  void reset_primal_devex();  ///< new reference framework (weights := 1)
  /// Updates the primal reference weights after pivoting `entering` into
  /// `pivot_row` (the eta of the pivot must not be appended yet: the update
  /// prices the leaving row against the pre-pivot basis inverse).
  void update_primal_devex(int entering, int pivot_row, double pivot_value);
  void reset_dual_devex();  ///< new dual reference framework (weights := 1)
  /// Same for the dual row weights; `alpha`/`pattern` hold the FTRAN'd
  /// entering column against the pre-pivot basis.
  void update_dual_devex(int pivot_row, double pivot_value,
                         const std::vector<double>& alpha,
                         const std::vector<int>& pattern);
  /// One primal phase; returns false on iteration limit. `phase1` selects
  /// the artificial-infeasibility objective.
  bool primal_iterate(long budget, Solution& result);
  /// Dual simplex until primal feasible; kOptimal / kInfeasible /
  /// kIterationLimit via result.status; false = numerical trouble, caller
  /// should cold start.
  bool dual_iterate(long budget, Solution& result);
  bool evict_basic_artificials();  ///< false = fatal factorization trouble
  Solution finish_optimal();
  Solution run_two_phase();

  SolveOptions options_;

  int n_ = 0;           ///< structural variables
  int m_ = 0;           ///< rows
  int total_ = 0;       ///< structural + slack + artificial columns
  int first_artificial_ = 0;
  std::vector<double> objective_;  ///< structural objective coefficients

  // CSC copy of the structural matrix (merged duplicate terms).
  std::vector<int> col_start_;
  std::vector<int> row_index_;
  std::vector<double> coeff_;
  // CSR transpose of the same matrix, for row-wise dual pricing.
  std::vector<int> row_start_;
  std::vector<int> row_col_;
  std::vector<double> row_coeff_;
  std::vector<double> rhs_;
  std::vector<Sense> sense_;
  std::vector<double> artificial_sign_;  ///< per-row sign, 0 = no artificial

  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> x_;
  std::vector<double> cost_;  ///< active phase costs
  std::vector<VarState> state_;
  std::vector<int> basis_;

  std::vector<Eta> etas_;
  std::vector<int> eta_index_;     ///< shared arena: off-pivot row indices
  std::vector<double> eta_value_;  ///< shared arena: off-pivot coefficients
  int factor_etas_ = 0;  ///< etas belonging to the factorization itself
  LuFactorization lu_;   ///< active when options_.factorization == kForrestTomlin
  bool factor_rebuilt_ = false;  ///< factor_update refactorized mid-pivot
  bool rows_dirty_ = false;      ///< add_row deferred the CSC/scratch refresh
  bool basis_valid_ = false;
  bool values_dirty_ = false;
  bool numerics_failed_ = false;

  long total_iterations_ = 0;
  long iterations_ = 0;  ///< pivots spent in the current solve
  long refactorizations_ = 0;
  long basis_updates_ = 0;
  long warm_rows_added_ = 0;
  long eta_fallbacks_ = 0;

  // Scratch for refactorize_lu / add_row.
  std::vector<int> lu_col_rows_;
  std::vector<double> lu_col_vals_;
  std::vector<int> lu_col_start_;

  // Scratch buffers reused across iterations.
  mutable std::vector<double> work_;
  mutable std::vector<double> work2_;
  mutable std::vector<int> pattern_;
  std::vector<double> duals_;  ///< y scratch for the iterate loops
  std::vector<double> rho_;    ///< BTRAN row scratch for the dual simplex

  /// One admissible column in the dual ratio test.
  struct Breakpoint {
    double ratio = 0.0;
    double alpha = 0.0;  ///< entry of the BTRAN'd leaving row
    int j = 0;
  };
  std::vector<Breakpoint> breakpoints_;  ///< BFRT scratch
  std::vector<double> flip_acc_;         ///< accumulated bound flips

  // Devex reference-framework weights (all 1.0 at a framework reset).
  std::vector<double> devex_weight_;  ///< per-column, primal pricing
  std::vector<double> dual_weight_;   ///< per-row, dual leaving choice
  mutable std::vector<double> devex_rho_;  ///< BTRAN row scratch (primal)

  /// Incrementally-updated reduced costs for the dual simplex (exact at
  /// every refactorization; see refresh_reduced_costs).
  std::vector<double> reduced_d_;
  void refresh_reduced_costs();
  // Scratch for the row-wise pricing pass: alpha = rho^T A gathered over
  // the nonzero rows of the BTRAN'd vector rho (see gather_pivot_row).
  mutable std::vector<double> alpha_row_;
  mutable std::vector<int> alpha_cols_;
  mutable std::vector<char> alpha_touched_;
  /// Fills alpha_row_/alpha_cols_ with rho^T [A | I] over the columns that
  /// intersect a nonzero entry of `rho` (all others are exactly zero).
  void gather_pivot_row(const std::vector<double>& rho) const;
};

}  // namespace fpva::lp

#endif  // FPVA_LP_REVISED_SIMPLEX_H
