#include "lp/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/logging.h"

namespace fpva::lp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kPivotEpsilon = 1e-9;
constexpr double kWeakPivot = 1e-7;   ///< below this, prefer a fresh factor
constexpr double kDropEpsilon = 1e-12;
constexpr int kRefactorInterval = 64;
/// A devex weight past this threshold restarts the reference framework.
constexpr double kDevexReset = 1e8;

}  // namespace

RevisedSimplex::RevisedSimplex(const Model& model, SolveOptions options)
    : options_(options) {
  LuFactorization::Options lu_options;
  lu_options.max_updates = options_.refactor_update_limit;
  lu_options.fill_ratio = options_.refactor_fill_ratio;
  lu_ = LuFactorization(lu_options);
  n_ = model.variable_count();
  m_ = model.constraint_count();
  first_artificial_ = n_ + m_;
  total_ = n_ + 2 * m_;
  build_columns(model);

  objective_.resize(static_cast<std::size_t>(n_));
  lower_.assign(static_cast<std::size_t>(total_), 0.0);
  upper_.assign(static_cast<std::size_t>(total_), 0.0);
  for (int j = 0; j < n_; ++j) {
    const Variable& var = model.variable(j);
    objective_[static_cast<std::size_t>(j)] = var.objective;
    lower_[static_cast<std::size_t>(j)] = var.lower;
    upper_[static_cast<std::size_t>(j)] = var.upper;
  }
  for (int i = 0; i < m_; ++i) {
    const auto slack = static_cast<std::size_t>(n_ + i);
    switch (sense_[static_cast<std::size_t>(i)]) {
      case Sense::kLessEqual:
        lower_[slack] = 0.0;
        upper_[slack] = kInf;
        break;
      case Sense::kGreaterEqual:
        lower_[slack] = -kInf;
        upper_[slack] = 0.0;
        break;
      case Sense::kEqual:
        lower_[slack] = 0.0;
        upper_[slack] = 0.0;
        break;
    }
  }
  // Artificial bounds are opened per-row by reset_to_slack_basis.

  x_.assign(static_cast<std::size_t>(total_), 0.0);
  cost_.assign(static_cast<std::size_t>(total_), 0.0);
  state_.assign(static_cast<std::size_t>(total_), VarState::kAtLower);
  basis_.assign(static_cast<std::size_t>(m_), -1);
  artificial_sign_.assign(static_cast<std::size_t>(m_), 1.0);
  work_.assign(static_cast<std::size_t>(m_), 0.0);
  work2_.assign(static_cast<std::size_t>(m_), 0.0);
  pattern_.reserve(static_cast<std::size_t>(m_));
  alpha_row_.assign(static_cast<std::size_t>(total_), 0.0);
  alpha_touched_.assign(static_cast<std::size_t>(total_), 0);
  alpha_cols_.reserve(static_cast<std::size_t>(total_));
}

void RevisedSimplex::build_columns(const Model& model) {
  // Gather the structural matrix column-wise with duplicate terms merged.
  std::vector<int> nnz(static_cast<std::size_t>(n_), 0);
  std::vector<std::vector<Term>> merged(
      static_cast<std::size_t>(m_));
  rhs_.resize(static_cast<std::size_t>(m_));
  sense_.resize(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    const Constraint& row = model.constraint(i);
    rhs_[static_cast<std::size_t>(i)] = row.rhs;
    sense_[static_cast<std::size_t>(i)] = row.sense;
    auto& out = merged[static_cast<std::size_t>(i)];
    for (const Term& term : row.terms) {
      bool found = false;
      for (Term& existing : out) {
        if (existing.variable == term.variable) {
          existing.coefficient += term.coefficient;
          found = true;
          break;
        }
      }
      if (!found) out.push_back(term);
    }
    for (const Term& term : out) {
      ++nnz[static_cast<std::size_t>(term.variable)];
    }
  }
  col_start_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (int j = 0; j < n_; ++j) {
    col_start_[static_cast<std::size_t>(j) + 1] =
        col_start_[static_cast<std::size_t>(j)] +
        nnz[static_cast<std::size_t>(j)];
  }
  const int total_nnz = col_start_[static_cast<std::size_t>(n_)];
  row_index_.resize(static_cast<std::size_t>(total_nnz));
  coeff_.resize(static_cast<std::size_t>(total_nnz));
  std::vector<int> fill = col_start_;
  for (int i = 0; i < m_; ++i) {
    for (const Term& term : merged[static_cast<std::size_t>(i)]) {
      const int slot = fill[static_cast<std::size_t>(term.variable)]++;
      row_index_[static_cast<std::size_t>(slot)] = i;
      coeff_[static_cast<std::size_t>(slot)] = term.coefficient;
    }
  }
  // CSR transpose for row-wise dual pricing (alpha = one row of B^-1 A).
  row_start_.assign(static_cast<std::size_t>(m_) + 1, 0);
  for (int i = 0; i < m_; ++i) {
    row_start_[static_cast<std::size_t>(i) + 1] =
        row_start_[static_cast<std::size_t>(i)] +
        static_cast<int>(merged[static_cast<std::size_t>(i)].size());
  }
  row_col_.resize(static_cast<std::size_t>(total_nnz));
  row_coeff_.resize(static_cast<std::size_t>(total_nnz));
  std::vector<int> row_fill = row_start_;
  for (int i = 0; i < m_; ++i) {
    for (const Term& term : merged[static_cast<std::size_t>(i)]) {
      const int slot = row_fill[static_cast<std::size_t>(i)]++;
      row_col_[static_cast<std::size_t>(slot)] = term.variable;
      row_coeff_[static_cast<std::size_t>(slot)] = term.coefficient;
    }
  }
}

int RevisedSimplex::column_nnz(int var) const {
  if (var < n_) {
    return col_start_[static_cast<std::size_t>(var) + 1] -
           col_start_[static_cast<std::size_t>(var)];
  }
  return 1;  // slack and artificial columns are unit
}

void RevisedSimplex::load_column(int var, std::vector<double>& dense,
                                 std::vector<int>& pattern) const {
  for (const int i : pattern) dense[static_cast<std::size_t>(i)] = 0.0;
  pattern.clear();
  if (var < n_) {
    for (int k = col_start_[static_cast<std::size_t>(var)];
         k < col_start_[static_cast<std::size_t>(var) + 1]; ++k) {
      const int row = row_index_[static_cast<std::size_t>(k)];
      dense[static_cast<std::size_t>(row)] =
          coeff_[static_cast<std::size_t>(k)];
      pattern.push_back(row);
    }
  } else if (var < first_artificial_) {
    const int row = var - n_;
    dense[static_cast<std::size_t>(row)] = 1.0;
    pattern.push_back(row);
  } else {
    const int row = var - first_artificial_;
    dense[static_cast<std::size_t>(row)] =
        artificial_sign_[static_cast<std::size_t>(row)];
    pattern.push_back(row);
  }
}

double RevisedSimplex::column_dot(int var,
                                  const std::vector<double>& dense) const {
  if (var < n_) {
    double sum = 0.0;
    for (int k = col_start_[static_cast<std::size_t>(var)];
         k < col_start_[static_cast<std::size_t>(var) + 1]; ++k) {
      sum += coeff_[static_cast<std::size_t>(k)] *
             dense[static_cast<std::size_t>(row_index_[
                 static_cast<std::size_t>(k)])];
    }
    return sum;
  }
  if (var < first_artificial_) {
    return dense[static_cast<std::size_t>(var - n_)];
  }
  const int row = var - first_artificial_;
  return artificial_sign_[static_cast<std::size_t>(row)] *
         dense[static_cast<std::size_t>(row)];
}

void RevisedSimplex::set_bounds(int variable, double lower, double upper) {
  common::check(variable >= 0 && variable < n_,
                "RevisedSimplex::set_bounds: variable out of range");
  common::check(lower <= upper, "RevisedSimplex::set_bounds: empty domain");
  const auto j = static_cast<std::size_t>(variable);
  lower_[j] = lower;
  upper_[j] = upper;
  if (state_[j] == VarState::kAtLower) {
    x_[j] = lower;
  } else if (state_[j] == VarState::kAtUpper) {
    x_[j] = upper;
  }
  values_dirty_ = true;
}

double RevisedSimplex::lower_bound(int variable) const {
  common::check(variable >= 0 && variable < n_,
                "RevisedSimplex::lower_bound: out of range");
  return lower_[static_cast<std::size_t>(variable)];
}

double RevisedSimplex::upper_bound(int variable) const {
  common::check(variable >= 0 && variable < n_,
                "RevisedSimplex::upper_bound: out of range");
  return upper_[static_cast<std::size_t>(variable)];
}

void RevisedSimplex::rebuild_csc() {
  const auto total_nnz = row_col_.size();
  col_start_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (std::size_t k = 0; k < total_nnz; ++k) {
    ++col_start_[static_cast<std::size_t>(row_col_[k]) + 1];
  }
  for (int j = 0; j < n_; ++j) {
    col_start_[static_cast<std::size_t>(j) + 1] +=
        col_start_[static_cast<std::size_t>(j)];
  }
  row_index_.resize(total_nnz);
  coeff_.resize(total_nnz);
  std::vector<int> fill = col_start_;
  for (int i = 0; i < m_; ++i) {
    for (int k = row_start_[static_cast<std::size_t>(i)];
         k < row_start_[static_cast<std::size_t>(i) + 1]; ++k) {
      const int slot = fill[static_cast<std::size_t>(
          row_col_[static_cast<std::size_t>(k)])]++;
      row_index_[static_cast<std::size_t>(slot)] = i;
      coeff_[static_cast<std::size_t>(slot)] =
          row_coeff_[static_cast<std::size_t>(k)];
    }
  }
}

void RevisedSimplex::add_row(const std::vector<Term>& terms, Sense sense,
                             double rhs) {
  std::vector<Term> merged;
  merged.reserve(terms.size());
  for (const Term& term : terms) {
    common::check(term.variable >= 0 && term.variable < n_,
                  "RevisedSimplex::add_row: variable out of range");
    bool found = false;
    for (Term& existing : merged) {
      if (existing.variable == term.variable) {
        existing.coefficient += term.coefficient;
        found = true;
        break;
      }
    }
    if (!found) merged.push_back(term);
  }

  // The new slack slot is spliced in right after the existing slacks, so
  // the artificial block shifts up by one; basis references follow.
  const int new_slack = n_ + m_;
  double slack_lower = 0.0, slack_upper = 0.0;
  switch (sense) {
    case Sense::kLessEqual:
      slack_lower = 0.0;
      slack_upper = kInf;
      break;
    case Sense::kGreaterEqual:
      slack_lower = -kInf;
      slack_upper = 0.0;
      break;
    case Sense::kEqual:
      slack_lower = 0.0;
      slack_upper = 0.0;
      break;
  }
  const auto insert_at = static_cast<std::ptrdiff_t>(first_artificial_);
  lower_.insert(lower_.begin() + insert_at, slack_lower);
  upper_.insert(upper_.begin() + insert_at, slack_upper);
  x_.insert(x_.begin() + insert_at, 0.0);
  cost_.insert(cost_.begin() + insert_at, 0.0);
  state_.insert(state_.begin() + insert_at, VarState::kBasic);
  // New artificial, fixed at zero until a cold two-phase start opens it.
  lower_.push_back(0.0);
  upper_.push_back(0.0);
  x_.push_back(0.0);
  cost_.push_back(0.0);
  state_.push_back(VarState::kAtLower);
  for (int& basic : basis_) {
    if (basic >= first_artificial_) ++basic;
  }
  first_artificial_ += 1;
  total_ += 2;

  rhs_.push_back(rhs);
  sense_.push_back(sense);
  artificial_sign_.push_back(1.0);
  for (const Term& term : merged) {
    row_col_.push_back(term.variable);
    row_coeff_.push_back(term.coefficient);
  }
  row_start_.push_back(static_cast<int>(row_col_.size()));
  m_ += 1;
  // The CSC mirror and the scratch sizes are refreshed once per batch of
  // appended rows (flush_row_additions at the next solve entry), not per
  // row — the cutting loop appends up to max_cuts_per_round rows between
  // solves. Nothing below needs them: the live-basis extension works off
  // the merged terms and basis_ alone.
  rows_dirty_ = true;

  basis_.push_back(new_slack);
  values_dirty_ = true;

  if (basis_valid_ && lu() && lu_.valid()) {
    // Extend the live factorization: gather the new row's coefficients on
    // the basic columns by basis position and append the unit pivot.
    std::vector<int> var_position(static_cast<std::size_t>(n_), -1);
    for (int p = 0; p < m_ - 1; ++p) {
      const int basic = basis_[static_cast<std::size_t>(p)];
      if (basic < n_) var_position[static_cast<std::size_t>(basic)] = p;
    }
    std::vector<int> positions;
    std::vector<double> values;
    for (const Term& term : merged) {
      const int p = var_position[static_cast<std::size_t>(term.variable)];
      if (p >= 0) {
        positions.push_back(p);
        values.push_back(term.coefficient);
      }
    }
    if (lu_.add_row(positions, values)) {
      ++warm_rows_added_;
    } else {
      basis_valid_ = false;
    }
  } else {
    // Eta oracle (or no live factorization): the next solve cold-starts.
    basis_valid_ = false;
  }
}

void RevisedSimplex::flush_row_additions() {
  if (!rows_dirty_) return;
  rebuild_csc();
  work_.assign(static_cast<std::size_t>(m_), 0.0);
  work2_.assign(static_cast<std::size_t>(m_), 0.0);
  alpha_row_.assign(static_cast<std::size_t>(total_), 0.0);
  alpha_touched_.assign(static_cast<std::size_t>(total_), 0);
  alpha_cols_.clear();
  rows_dirty_ = false;
}

BasisSnapshot RevisedSimplex::snapshot_basis() const {
  BasisSnapshot snapshot;
  snapshot.rows = m_;
  snapshot.basis = basis_;
  snapshot.state.resize(state_.size());
  for (std::size_t j = 0; j < state_.size(); ++j) {
    snapshot.state[j] = static_cast<std::uint8_t>(state_[j]);
  }
  return snapshot;
}

bool RevisedSimplex::restore_basis(const BasisSnapshot& snapshot) {
  flush_row_additions();
  if (snapshot.rows != m_ ||
      snapshot.basis.size() != static_cast<std::size_t>(m_) ||
      snapshot.state.size() != static_cast<std::size_t>(total_)) {
    return false;
  }
  // Assertion-level restores after a backjump often land on a checkpoint
  // identical to the live basis (the jump returned to the ancestor whose
  // basis is still loaded). Adopting it would only rebuild the same
  // factorization — skip the refactorization and keep the live one.
  if (basis_valid_ && !numerics_failed_ && basis_ == snapshot.basis) {
    bool same_state = true;
    for (std::size_t j = 0; j < snapshot.state.size() && same_state; ++j) {
      same_state = state_[j] == static_cast<VarState>(snapshot.state[j]);
    }
    if (same_state) return true;
  }
  basis_ = snapshot.basis;
  for (std::size_t j = 0; j < snapshot.state.size(); ++j) {
    state_[j] = static_cast<VarState>(snapshot.state[j]);
    if (state_[j] == VarState::kAtLower) {
      x_[j] = lower_[j];
    } else if (state_[j] == VarState::kAtUpper) {
      x_[j] = upper_[j];
    }
  }
  values_dirty_ = true;
  basis_valid_ = refactorize();
  return basis_valid_;
}

// ---------------------------------------------------------------- factorize

void RevisedSimplex::append_eta(int pivot_row,
                                const std::vector<double>& alpha,
                                const std::vector<int>& alpha_pattern) {
  const double pivot_value = alpha[static_cast<std::size_t>(pivot_row)];
  Eta eta;
  eta.pivot_row = pivot_row;
  eta.pivot_value = 1.0 / pivot_value;
  eta.start = static_cast<int>(eta_index_.size());
  for (const int i : alpha_pattern) {
    if (i == pivot_row) continue;
    const double a = alpha[static_cast<std::size_t>(i)];
    if (std::abs(a) <= kDropEpsilon) continue;
    eta_index_.push_back(i);
    eta_value_.push_back(-a / pivot_value);
  }
  eta.end = static_cast<int>(eta_index_.size());
  etas_.push_back(eta);
}

void RevisedSimplex::ftran(std::vector<double>& dense) const {
  if (lu() && lu_.valid()) {
    lu_.ftran(dense);
    return;
  }
  for (const Eta& eta : etas_) {
    const double t = dense[static_cast<std::size_t>(eta.pivot_row)];
    if (t == 0.0) continue;
    dense[static_cast<std::size_t>(eta.pivot_row)] = eta.pivot_value * t;
    for (int k = eta.start; k < eta.end; ++k) {
      dense[static_cast<std::size_t>(
          eta_index_[static_cast<std::size_t>(k)])] +=
          eta_value_[static_cast<std::size_t>(k)] * t;
    }
  }
}

void RevisedSimplex::ftran_entering(std::vector<double>& dense) const {
  if (lu() && lu_.valid()) {
    lu_.ftran(dense, /*save_spike=*/true);
    return;
  }
  ftran(dense);
}

void RevisedSimplex::btran(std::vector<double>& dense) const {
  if (lu() && lu_.valid()) {
    lu_.btran(dense);
    return;
  }
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    const Eta& eta = *it;
    double s = eta.pivot_value * dense[static_cast<std::size_t>(eta.pivot_row)];
    for (int k = eta.start; k < eta.end; ++k) {
      s += eta_value_[static_cast<std::size_t>(k)] *
           dense[static_cast<std::size_t>(
               eta_index_[static_cast<std::size_t>(k)])];
    }
    dense[static_cast<std::size_t>(eta.pivot_row)] = s;
  }
}

bool RevisedSimplex::refactorize() {
  ++refactorizations_;
  if (lu()) {
    // Fail-point: a forced LU-instability event reports the refactorization
    // as singular, exercising the numeric-recovery ladder end to end.
    if (common::failpoint::evaluate("lp.lu_refactor") ==
        common::failpoint::Action::kError) {
      return false;
    }
    return refactorize_lu();
  }
  return refactorize_eta();
}

/// Gathers the basis columns into a CSC scratch and hands them to the
/// Markowitz/Forrest-Tomlin engine. Does not permute basis_ (the LU keeps
/// its pivot ordering internal).
bool RevisedSimplex::refactorize_lu() {
  lu_col_rows_.clear();
  lu_col_vals_.clear();
  lu_col_start_.clear();
  lu_col_start_.push_back(0);
  for (int i = 0; i < m_; ++i) {
    const int var = basis_[static_cast<std::size_t>(i)];
    if (var < n_) {
      for (int k = col_start_[static_cast<std::size_t>(var)];
           k < col_start_[static_cast<std::size_t>(var) + 1]; ++k) {
        lu_col_rows_.push_back(row_index_[static_cast<std::size_t>(k)]);
        lu_col_vals_.push_back(coeff_[static_cast<std::size_t>(k)]);
      }
    } else if (var < first_artificial_) {
      lu_col_rows_.push_back(var - n_);
      lu_col_vals_.push_back(1.0);
    } else {
      const int row = var - first_artificial_;
      lu_col_rows_.push_back(row);
      lu_col_vals_.push_back(artificial_sign_[static_cast<std::size_t>(row)]);
    }
    lu_col_start_.push_back(static_cast<int>(lu_col_rows_.size()));
  }
  std::vector<BasisColumn> columns(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    const auto is = static_cast<std::size_t>(i);
    const int start = lu_col_start_[is];
    columns[is] = {lu_col_rows_.data() + start, lu_col_vals_.data() + start,
                   lu_col_start_[is + 1] - start};
  }
  etas_.clear();
  eta_index_.clear();
  eta_value_.clear();
  factor_etas_ = 0;
  values_dirty_ = true;
  return lu_.factorize(m_, columns);
}

bool RevisedSimplex::factor_is_stale() const {
  if (lu()) return !lu_.valid() || lu_.updates_since_factor() > 0;
  return static_cast<int>(etas_.size()) > factor_etas_;
}

bool RevisedSimplex::factor_needs_refresh() const {
  if (lu()) return lu_.needs_refactor();
  return static_cast<int>(etas_.size()) - factor_etas_ >= kRefactorInterval;
}

bool RevisedSimplex::factor_update(int pivot_row, double pivot_value,
                                   const std::vector<double>& alpha,
                                   const std::vector<int>& alpha_pattern) {
  factor_rebuilt_ = false;
  if (!lu()) {
    append_eta(pivot_row, alpha, alpha_pattern);
    return true;
  }
  if (lu_.valid() && lu_.update(pivot_row, pivot_value)) {
    ++basis_updates_;
    if (!lu_.needs_refactor()) return true;
  }
  // Unstable/singular update or the fill policy fired: basis_ already
  // reflects the pivot, so a fresh factorization replaces the update.
  factor_rebuilt_ = true;
  return refactorize();
}

bool RevisedSimplex::refactorize_eta() {
  etas_.clear();
  eta_index_.clear();
  eta_value_.clear();
  // Process basis columns sparsest-first: unit slack/artificial columns
  // pivot their row with zero fill, leaving only the structural "bump".
  std::vector<int> order(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) order[static_cast<std::size_t>(i)] = i;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return column_nnz(basis_[static_cast<std::size_t>(a)]) <
           column_nnz(basis_[static_cast<std::size_t>(b)]);
  });

  std::vector<char> row_taken(static_cast<std::size_t>(m_), 0);
  std::vector<int> new_basis(static_cast<std::size_t>(m_), -1);
  std::vector<double>& dense = work_;
  std::vector<int>& pattern = pattern_;
  for (const int position : order) {
    const int var = basis_[static_cast<std::size_t>(position)];
    load_column(var, dense, pattern);
    ftran(dense);
    // The FTRAN may have created fill outside the loaded pattern; rescan.
    int pivot_row = -1;
    double best = 0.0;
    for (int i = 0; i < m_; ++i) {
      if (row_taken[static_cast<std::size_t>(i)]) continue;
      const double a = std::abs(dense[static_cast<std::size_t>(i)]);
      if (a > best) {
        best = a;
        pivot_row = i;
      }
    }
    if (pivot_row < 0 || best <= 1e-11) {
      // Clear the dense scratch before bailing out.
      std::fill(dense.begin(), dense.end(), 0.0);
      pattern.clear();
      return false;  // singular basis
    }
    pattern.clear();
    for (int i = 0; i < m_; ++i) {
      if (dense[static_cast<std::size_t>(i)] != 0.0) pattern.push_back(i);
    }
    append_eta(pivot_row, dense, pattern);
    row_taken[static_cast<std::size_t>(pivot_row)] = 1;
    new_basis[static_cast<std::size_t>(pivot_row)] = var;
    for (const int i : pattern) dense[static_cast<std::size_t>(i)] = 0.0;
    pattern.clear();
  }
  basis_ = std::move(new_basis);
  factor_etas_ = static_cast<int>(etas_.size());
  values_dirty_ = true;
  return true;
}

void RevisedSimplex::compute_basic_values() {
  std::vector<double>& r = work2_;
  for (int i = 0; i < m_; ++i) {
    r[static_cast<std::size_t>(i)] = rhs_[static_cast<std::size_t>(i)];
  }
  for (int j = 0; j < total_; ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (state_[js] == VarState::kBasic) continue;
    const double v = x_[js];
    if (v == 0.0) continue;
    if (j < n_) {
      for (int k = col_start_[js]; k < col_start_[js + 1]; ++k) {
        r[static_cast<std::size_t>(
            row_index_[static_cast<std::size_t>(k)])] -=
            coeff_[static_cast<std::size_t>(k)] * v;
      }
    } else if (j < first_artificial_) {
      r[static_cast<std::size_t>(j - n_)] -= v;
    } else {
      const int row = j - first_artificial_;
      r[static_cast<std::size_t>(row)] -=
          artificial_sign_[static_cast<std::size_t>(row)] * v;
    }
  }
  ftran(r);
  for (int i = 0; i < m_; ++i) {
    x_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] =
        r[static_cast<std::size_t>(i)];
    r[static_cast<std::size_t>(i)] = 0.0;
  }
  values_dirty_ = false;
}

void RevisedSimplex::compute_duals(std::vector<double>& y) const {
  y.assign(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i) {
    y[static_cast<std::size_t>(i)] =
        cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
  }
  btran(y);
}

double RevisedSimplex::reduced_cost(int var,
                                    const std::vector<double>& y) const {
  return cost_[static_cast<std::size_t>(var)] - column_dot(var, y);
}

/// Copies the BTRAN'd unit row of the violated basic into the solution's
/// Farkas ray, oriented to the Solution::farkas_ray sign convention:
/// `below` (basic under its lower bound) keeps +rho, an over-upper basic
/// negates it.
void RevisedSimplex::fill_farkas_ray(const std::vector<double>& rho,
                                     bool below, Solution& result) const {
  result.farkas_ray.assign(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i) {
    const auto is = static_cast<std::size_t>(i);
    result.farkas_ray[is] = below ? rho[is] : -rho[is];
  }
}

/// Recomputes the dual reduced costs exactly. Called when the dual simplex
/// starts and at every refactorization; between those points reduced_d_ is
/// updated incrementally per pivot (one multiply per touched column instead
/// of a BTRAN plus a full pricing dot pass per iteration).
void RevisedSimplex::refresh_reduced_costs() {
  std::vector<double>& y = duals_;
  compute_duals(y);
  reduced_d_.assign(static_cast<std::size_t>(total_), 0.0);
  for (int j = 0; j < total_; ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (state_[js] == VarState::kBasic) continue;
    reduced_d_[js] = cost_[js] - column_dot(j, y);
  }
}

// -------------------------------------------------------------------- devex

void RevisedSimplex::reset_primal_devex() {
  devex_weight_.assign(static_cast<std::size_t>(total_), 1.0);
}

void RevisedSimplex::update_primal_devex(int entering, int pivot_row,
                                         double pivot_value) {
  // Devex (Harris '73): the entering column's reference weight, mapped
  // through the pivot row of the *pre-pivot* B^-1, bounds the weights of
  // every nonbasic column from below. Columns outside the gathered pivot
  // row have alpha exactly zero and keep their weight.
  std::vector<double>& rho = devex_rho_;
  rho.assign(static_cast<std::size_t>(m_), 0.0);
  rho[static_cast<std::size_t>(pivot_row)] = 1.0;
  btran(rho);
  gather_pivot_row(rho);
  const auto q = static_cast<std::size_t>(entering);
  const double w_q = devex_weight_[q];
  const double inv2 = 1.0 / (pivot_value * pivot_value);
  double w_max = 0.0;
  for (const int j : alpha_cols_) {
    const auto js = static_cast<std::size_t>(j);
    if (j == entering || state_[js] == VarState::kBasic) continue;
    if (upper_[js] - lower_[js] <= 0.0) continue;  // fixed: never priced
    const double a = alpha_row_[js];
    if (a == 0.0) continue;
    const double candidate = a * a * inv2 * w_q;
    if (candidate > devex_weight_[js]) devex_weight_[js] = candidate;
    w_max = std::max(w_max, devex_weight_[js]);
  }
  const auto leaving = static_cast<std::size_t>(
      basis_[static_cast<std::size_t>(pivot_row)]);
  devex_weight_[leaving] = std::max(w_q * inv2, 1.0);
  if (w_max > kDevexReset) reset_primal_devex();
}

void RevisedSimplex::gather_pivot_row(const std::vector<double>& rho) const {
  for (const int j : alpha_cols_) {
    alpha_row_[static_cast<std::size_t>(j)] = 0.0;
    alpha_touched_[static_cast<std::size_t>(j)] = 0;
  }
  alpha_cols_.clear();
  for (int i = 0; i < m_; ++i) {
    const double r = rho[static_cast<std::size_t>(i)];
    if (r == 0.0) continue;
    for (int k = row_start_[static_cast<std::size_t>(i)];
         k < row_start_[static_cast<std::size_t>(i) + 1]; ++k) {
      const auto j = static_cast<std::size_t>(
          row_col_[static_cast<std::size_t>(k)]);
      if (!alpha_touched_[j]) {
        alpha_touched_[j] = 1;
        alpha_cols_.push_back(static_cast<int>(j));
      }
      alpha_row_[j] += r * row_coeff_[static_cast<std::size_t>(k)];
    }
    const auto slack = static_cast<std::size_t>(n_ + i);
    if (!alpha_touched_[slack]) {
      alpha_touched_[slack] = 1;
      alpha_cols_.push_back(n_ + i);
    }
    alpha_row_[slack] += r;  // slack column is the unit vector e_i
  }
}

void RevisedSimplex::reset_dual_devex() {
  dual_weight_.assign(static_cast<std::size_t>(m_), 1.0);
}

void RevisedSimplex::update_dual_devex(int pivot_row, double pivot_value,
                                       const std::vector<double>& alpha,
                                       const std::vector<int>& pattern) {
  // Row-space devex: dual_weight_[i] tracks ||e_i^T B^-1||^2 within the
  // reference framework. After the pivot, row i picks up -alpha_i/alpha_r
  // times the old pivot row; the update needs only the FTRAN'd entering
  // column, so it is O(nnz(alpha)).
  const auto r = static_cast<std::size_t>(pivot_row);
  const double w_r = dual_weight_[r];
  const double inv2 = 1.0 / (pivot_value * pivot_value);
  double w_max = 0.0;
  for (const int i : pattern) {
    if (i == pivot_row) continue;
    const double a = alpha[static_cast<std::size_t>(i)];
    const double candidate = a * a * inv2 * w_r;
    auto& w = dual_weight_[static_cast<std::size_t>(i)];
    if (candidate > w) w = candidate;
    w_max = std::max(w_max, w);
  }
  dual_weight_[r] = std::max(w_r * inv2, 1.0);
  if (w_max > kDevexReset) reset_dual_devex();
}

void RevisedSimplex::fill_primal_point(Solution& result) const {
  result.values.resize(static_cast<std::size_t>(n_));
  double objective = 0.0;
  for (int j = 0; j < n_; ++j) {
    const auto js = static_cast<std::size_t>(j);
    const double v = std::min(std::max(x_[js], lower_[js]), upper_[js]);
    result.values[js] = v;
    objective += objective_[js] * v;
  }
  result.objective = objective;
}

// ------------------------------------------------------------------- primal

void RevisedSimplex::reset_to_slack_basis() {
  etas_.clear();
  eta_index_.clear();
  eta_value_.clear();
  factor_etas_ = 0;
  basis_valid_ = false;

  for (int j = 0; j < n_; ++j) {
    const auto js = static_cast<std::size_t>(j);
    const bool prefer_lower = std::abs(lower_[js]) <= std::abs(upper_[js]);
    state_[js] = prefer_lower ? VarState::kAtLower : VarState::kAtUpper;
    x_[js] = prefer_lower ? lower_[js] : upper_[js];
  }

  // Row residuals once the structurals are parked.
  std::vector<double>& residual = work2_;
  for (int i = 0; i < m_; ++i) {
    residual[static_cast<std::size_t>(i)] = rhs_[static_cast<std::size_t>(i)];
  }
  for (int j = 0; j < n_; ++j) {
    const auto js = static_cast<std::size_t>(j);
    const double v = x_[js];
    if (v == 0.0) continue;
    for (int k = col_start_[js]; k < col_start_[js + 1]; ++k) {
      residual[static_cast<std::size_t>(
          row_index_[static_cast<std::size_t>(k)])] -=
          coeff_[static_cast<std::size_t>(k)] * v;
    }
  }

  for (int i = 0; i < m_; ++i) {
    const auto is = static_cast<std::size_t>(i);
    const auto slack = static_cast<std::size_t>(n_ + i);
    const auto art = static_cast<std::size_t>(first_artificial_ + i);
    const double r = residual[is];
    const double slo = lower_[slack];
    const double shi = upper_[slack];
    if (r >= slo - options_.tolerance && r <= shi + options_.tolerance) {
      // Slack absorbs the residual; artificial stays fixed at zero.
      state_[slack] = VarState::kBasic;
      x_[slack] = std::min(std::max(r, slo), shi);
      basis_[is] = n_ + i;
      artificial_sign_[is] = 1.0;
      lower_[art] = 0.0;
      upper_[art] = 0.0;
      state_[art] = VarState::kAtLower;
      x_[art] = 0.0;
    } else {
      // Park the slack at its violated (finite) end; the artificial takes
      // the leftover with a sign that keeps it nonnegative.
      const double clamped = std::min(std::max(r, slo), shi);
      state_[slack] = clamped <= slo + options_.tolerance
                          ? VarState::kAtLower
                          : VarState::kAtUpper;
      x_[slack] = clamped;
      const double leftover = r - clamped;
      artificial_sign_[is] = leftover > 0 ? 1.0 : -1.0;
      lower_[art] = 0.0;
      upper_[art] = kInf;
      state_[art] = VarState::kBasic;
      x_[art] = std::abs(leftover);
      basis_[is] = first_artificial_ + i;
    }
    residual[is] = 0.0;
  }
  values_dirty_ = false;  // basic values assigned exactly above
}

bool RevisedSimplex::price(const std::vector<double>& y, bool bland,
                           int* entering, double* violation) const {
  int best = -1;
  double best_violation = options_.tolerance;
  double best_score = 0.0;
  const bool use_devex = devex() && !bland;
  const auto consider = [&](int j, double d) {
    const auto js = static_cast<std::size_t>(j);
    double v = 0.0;
    if (state_[js] == VarState::kAtLower && d < -options_.tolerance) {
      v = -d;
    } else if (state_[js] == VarState::kAtUpper && d > options_.tolerance) {
      v = d;
    } else {
      return false;
    }
    if (bland) {
      best = j;
      best_violation = v;
      return true;  // Bland: first violating index wins
    }
    // Dantzig scores by the raw violation; devex divides by the reference
    // weight (a running lower bound on ||B^-1 a_j||^2), approximating
    // steepest edge without its exact-norm recurrences.
    const double score = use_devex ? v * v / devex_weight_[js] : v;
    if (best < 0 ? v > best_violation : score > best_score) {
      best_score = score;
      best_violation = v;
      best = j;
    }
    return false;
  };
  for (int j = 0; j < n_; ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (state_[js] == VarState::kBasic) continue;
    if (upper_[js] - lower_[js] <= 0.0) continue;  // fixed
    double dot = 0.0;
    for (int k = col_start_[js]; k < col_start_[js + 1]; ++k) {
      dot += coeff_[static_cast<std::size_t>(k)] *
             y[static_cast<std::size_t>(
                 row_index_[static_cast<std::size_t>(k)])];
    }
    if (consider(j, cost_[js] - dot)) break;
  }
  if (best < 0 || !bland) {
    for (int i = 0; i < m_ && (best < 0 || !bland); ++i) {
      for (int part = 0; part < 2; ++part) {
        const int j = part == 0 ? n_ + i : first_artificial_ + i;
        const auto js = static_cast<std::size_t>(j);
        if (state_[js] == VarState::kBasic) continue;
        if (upper_[js] - lower_[js] <= 0.0) continue;  // fixed
        const double dot = part == 0
                               ? y[static_cast<std::size_t>(i)]
                               : artificial_sign_[static_cast<std::size_t>(i)] *
                                     y[static_cast<std::size_t>(i)];
        if (consider(j, cost_[js] - dot)) break;
      }
    }
  }
  if (best < 0) return false;
  *entering = best;
  *violation = best_violation;
  return true;
}

bool RevisedSimplex::primal_iterate(long budget, Solution& result) {
  int consecutive_degenerate = 0;
  const int bland_threshold = 2 * (m_ + total_) + 20;
  std::vector<double>& y = duals_;
  std::vector<double>& alpha = work_;
  std::vector<int>& pattern = pattern_;
  if (devex()) reset_primal_devex();  // fresh reference framework per phase
  // Pivot loop is bounded by the caller's per-solve iteration budget;
  // cancellation is polled at node granularity by the branch-and-bound
  // driver so truncated LPs replay bit-exactly on resume.
  // fpva-lint: allow(missing-stop-poll)
  while (true) {
    if (iterations_ >= budget) {
      result.status = SolveStatus::kIterationLimit;
      result.iterations = iterations_;
      return false;
    }
    if (values_dirty_) compute_basic_values();

    compute_duals(y);
    int entering = -1;
    double violation = 0.0;
    if (!price(y, consecutive_degenerate > bland_threshold, &entering,
               &violation)) {
      return true;  // phase optimal
    }
    const auto q = static_cast<std::size_t>(entering);
    const double direction = state_[q] == VarState::kAtLower ? 1.0 : -1.0;
    const bool bland = consecutive_degenerate > bland_threshold;

    load_column(entering, alpha, pattern);
    ftran_entering(alpha);
    pattern.clear();
    for (int i = 0; i < m_; ++i) {
      if (alpha[static_cast<std::size_t>(i)] != 0.0) pattern.push_back(i);
    }

    // Bounded ratio test (see simplex.cpp; same tie-breaking).
    double best_t = upper_[q] - lower_[q];
    int leaving_row = -1;
    double leaving_pivot = 0.0;
    for (const int i : pattern) {
      const double a = alpha[static_cast<std::size_t>(i)];
      if (std::abs(a) <= kPivotEpsilon) continue;
      const int basic = basis_[static_cast<std::size_t>(i)];
      const auto bs = static_cast<std::size_t>(basic);
      const double rate = direction * a;  // basic changes by -rate*t
      double t;
      if (rate > 0.0) {
        t = (x_[bs] - lower_[bs]) / rate;
      } else {
        t = (upper_[bs] - x_[bs]) / (-rate);
      }
      if (!std::isfinite(t)) continue;  // unbounded in this row
      t = std::max(t, 0.0);
      const bool better =
          t < best_t - kPivotEpsilon ||
          (t < best_t + kPivotEpsilon && leaving_row >= 0 &&
           (bland ? basic < basis_[static_cast<std::size_t>(leaving_row)]
                  : std::abs(a) > std::abs(leaving_pivot)));
      if (leaving_row < 0 ? t < best_t + kPivotEpsilon : better) {
        best_t = std::min(best_t, t);
        leaving_row = i;
        leaving_pivot = a;
      }
    }

    if (leaving_row < 0 && !std::isfinite(best_t)) {
      // A bounded model cannot produce an unbounded improving ray; treat as
      // numerical breakdown so the caller can fall back.
      common::log_warning("revised simplex: unbounded step; restarting");
      numerics_failed_ = true;
      result.status = SolveStatus::kIterationLimit;
      result.iterations = iterations_;
      for (const int i : pattern) alpha[static_cast<std::size_t>(i)] = 0.0;
      pattern.clear();
      return false;
    }

    const double t = std::max(best_t, 0.0);
    if (leaving_row < 0) {
      // Pure bound flip.
      for (const int i : pattern) {
        const double a = alpha[static_cast<std::size_t>(i)];
        const auto bs = static_cast<std::size_t>(
            basis_[static_cast<std::size_t>(i)]);
        x_[bs] -= direction * t * a;
        x_[bs] = std::min(std::max(x_[bs], lower_[bs]), upper_[bs]);
        alpha[static_cast<std::size_t>(i)] = 0.0;
      }
      pattern.clear();
      x_[q] = direction > 0 ? upper_[q] : lower_[q];
      state_[q] = direction > 0 ? VarState::kAtUpper : VarState::kAtLower;
      ++iterations_;
      ++total_iterations_;
      consecutive_degenerate = 0;
      continue;
    }

    const double pivot_value = alpha[static_cast<std::size_t>(leaving_row)];
    if (std::abs(pivot_value) <= kWeakPivot && factor_is_stale()) {
      // Weak pivot on a stale factorization: refactorize and retry the
      // whole iteration with fresh numerics.
      for (const int i : pattern) alpha[static_cast<std::size_t>(i)] = 0.0;
      pattern.clear();
      if (!refactorize()) {
        numerics_failed_ = true;
        result.status = SolveStatus::kIterationLimit;
        result.iterations = iterations_;
        return false;
      }
      continue;
    }
    if (std::abs(pivot_value) <= kPivotEpsilon) {
      common::log_warning("revised simplex: numerically singular pivot");
      numerics_failed_ = true;
      result.status = SolveStatus::kIterationLimit;
      result.iterations = iterations_;
      for (const int i : pattern) alpha[static_cast<std::size_t>(i)] = 0.0;
      pattern.clear();
      return false;
    }

    for (const int i : pattern) {
      const double a = alpha[static_cast<std::size_t>(i)];
      const auto bs =
          static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
      x_[bs] -= direction * t * a;
      x_[bs] = std::min(std::max(x_[bs], lower_[bs]), upper_[bs]);
    }
    x_[q] += direction * t;

    // Devex update prices against the pre-pivot basis inverse: it must run
    // before the eta is appended and before basis_/state_ change.
    if (devex()) update_primal_devex(entering, leaving_row, pivot_value);

    const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
    const auto ls = static_cast<std::size_t>(leaving);
    const double rate = direction * pivot_value;
    if (rate > 0.0) {
      x_[ls] = lower_[ls];
      state_[ls] = VarState::kAtLower;
    } else {
      x_[ls] = upper_[ls];
      state_[ls] = VarState::kAtUpper;
    }
    state_[q] = VarState::kBasic;
    basis_[static_cast<std::size_t>(leaving_row)] = entering;
    const bool factor_ok = factor_update(leaving_row, pivot_value, alpha,
                                         pattern);
    for (const int i : pattern) alpha[static_cast<std::size_t>(i)] = 0.0;
    pattern.clear();
    if (!factor_ok) {
      numerics_failed_ = true;
      result.status = SolveStatus::kIterationLimit;
      result.iterations = iterations_;
      return false;
    }

    ++iterations_;
    ++total_iterations_;
    if (t <= options_.tolerance) {
      ++consecutive_degenerate;
    } else {
      consecutive_degenerate = 0;
    }
    if (!factor_rebuilt_ && factor_needs_refresh()) {
      if (!refactorize()) {
        numerics_failed_ = true;
        result.status = SolveStatus::kIterationLimit;
        result.iterations = iterations_;
        return false;
      }
      compute_basic_values();
    }
  }
}

// --------------------------------------------------------------------- dual

bool RevisedSimplex::dual_iterate(long budget, Solution& result) {
  int consecutive_degenerate = 0;
  const int bland_threshold = 2 * (m_ + total_) + 20;
  std::vector<double>& alpha = work_;
  std::vector<int>& pattern = pattern_;
  std::vector<double>& rho = rho_;
  rho.assign(static_cast<std::size_t>(m_), 0.0);
  if (devex()) reset_dual_devex();  // fresh row framework per dual run
  refresh_reduced_costs();
  // Bounded by the per-solve pivot budget; cancellation happens at node
  // granularity in the driver (see primal_iterate for the rationale).
  // fpva-lint: allow(missing-stop-poll)
  while (true) {
    if (iterations_ >= budget) {
      result.status = SolveStatus::kIterationLimit;
      result.iterations = iterations_;
      return true;
    }
    if (values_dirty_) compute_basic_values();

    const bool bland = consecutive_degenerate > bland_threshold;
    const bool use_devex = devex() && !bland;
    if (consecutive_degenerate > 8 * bland_threshold + 1000) {
      // Degenerate stalling despite Bland's rule: give up on the warm basis
      // and let the caller cold start.
      numerics_failed_ = true;
      return false;
    }

    // Leaving row: the basic variable most outside its bounds — raw
    // violation under Dantzig, violation^2 / row weight under devex (under
    // Bland's anti-cycling rule: the lowest-index violated basic).
    int leaving_row = -1;
    double worst = options_.tolerance;
    double worst_score = 0.0;
    bool below = false;
    for (int i = 0; i < m_; ++i) {
      const int basic = basis_[static_cast<std::size_t>(i)];
      const auto bs = static_cast<std::size_t>(basic);
      const double under = lower_[bs] - x_[bs];
      const double over = x_[bs] - upper_[bs];
      const double violation = std::max(under, over);
      if (violation <= options_.tolerance) continue;
      bool take;
      if (bland) {
        take = leaving_row < 0 ||
               basic < basis_[static_cast<std::size_t>(leaving_row)];
      } else {
        const double score =
            use_devex
                ? violation * violation /
                      dual_weight_[static_cast<std::size_t>(i)]
                : violation;
        take = leaving_row < 0 ? violation > worst : score > worst_score;
        if (take) worst_score = score;
      }
      if (take) {
        worst = violation;
        leaving_row = i;
        below = under > over;
      }
    }
    if (leaving_row < 0) {
      result.status = SolveStatus::kOptimal;
      result.iterations = iterations_;
      return true;  // primal feasible; caller polishes with primal phase 2
    }

    const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
    const auto ls = static_cast<std::size_t>(leaving);
    const double target = below ? lower_[ls] : upper_[ls];

    // Row of B^-1 A via BTRAN of the unit vector.
    std::fill(rho.begin(), rho.end(), 0.0);
    rho[static_cast<std::size_t>(leaving_row)] = 1.0;
    btran(rho);

    // Gather alpha = e_r^T B^-1 A row-wise over the nonzero rho entries
    // (rho is sparse right after a refactorization, so this typically
    // touches a small slice of the matrix instead of every column).
    // Artificial columns are always fixed by the time the dual runs.
    gather_pivot_row(rho);
    std::vector<double>& alpha_row = alpha_row_;
    std::vector<int>& alpha_cols = alpha_cols_;

    // Collect every admissible breakpoint for the bound-flipping ratio
    // test (BFRT); reduced costs come from the incrementally-maintained
    // reduced_d_ instead of a per-iteration BTRAN.
    std::vector<Breakpoint>& cand = breakpoints_;
    cand.clear();
    for (const int j : alpha_cols) {
      const auto js = static_cast<std::size_t>(j);
      if (state_[js] == VarState::kBasic) continue;
      if (upper_[js] - lower_[js] <= 0.0) continue;  // fixed
      const double a = alpha_row[js];
      if (std::abs(a) <= kPivotEpsilon) continue;
      const bool at_lower = state_[js] == VarState::kAtLower;
      // Moving j off its bound must push the leaving basic toward `target`.
      const bool admissible = below ? (at_lower ? a < 0.0 : a > 0.0)
                                    : (at_lower ? a > 0.0 : a < 0.0);
      if (!admissible) continue;
      const double d = reduced_d_[js];
      const double ratio = std::max(at_lower ? d : -d, 0.0) / std::abs(a);
      cand.push_back({ratio, a, j});
    }
    if (cand.empty()) {
      // No column can repair the violated row: primal infeasible. The
      // BTRAN'd unit row is the Farkas ray — oriented so that w_i >= 0 on
      // <= rows and w_i <= 0 on >= rows (see Solution::farkas_ray); when
      // the basic is below its lower bound the row reads "activity must
      // exceed what the bounds allow", i.e. +rho, else -rho.
      fill_farkas_ray(rho, below, result);
      result.status = SolveStatus::kInfeasible;
      result.iterations = iterations_;
      return true;
    }

    // The minimum dual ratio is mandatory for dual feasibility. Normally
    // breakpoints are walked in ratio order (larger pivots first on ties);
    // under Bland's rule the lowest-index minimum-ratio column enters and
    // no flips happen.
    std::size_t pick = 0;
    if (bland) {
      double min_ratio = kInf;
      for (const Breakpoint& c : cand) {
        min_ratio = std::min(min_ratio, c.ratio);
      }
      int best_j = total_;
      for (std::size_t k = 0; k < cand.size(); ++k) {
        if (cand[k].ratio <= min_ratio + kPivotEpsilon &&
            cand[k].j < best_j) {
          best_j = cand[k].j;
          pick = k;
        }
      }
    } else {
      std::sort(cand.begin(), cand.end(),
                [](const Breakpoint& a, const Breakpoint& b) {
                  if (a.ratio != b.ratio) return a.ratio < b.ratio;
                  const double pa = std::abs(a.alpha);
                  const double pb = std::abs(b.alpha);
                  if (pa != pb) return pa > pb;
                  return a.j < b.j;
                });
      // BFRT walk: a boxed candidate whose entire range still leaves the
      // row violated gets bound-flipped instead of entering; the first
      // breakpoint that can absorb the remaining violation enters. All
      // flipped columns sit past their dual ratio, so flipping keeps the
      // reduced costs feasible.
      double remaining = worst;
      bool exhausted = true;
      for (pick = 0; pick < cand.size(); ++pick) {
        const auto js = static_cast<std::size_t>(cand[pick].j);
        const double capacity =
            std::abs(cand[pick].alpha) * (upper_[js] - lower_[js]);
        if (!std::isfinite(capacity) || capacity >= remaining - 1e-9) {
          exhausted = false;
          break;
        }
        remaining -= capacity;
      }
      if (exhausted) {
        // Even flipping every admissible column cannot pull the row to its
        // bound: the dual ray certifies primal infeasibility.
        fill_farkas_ray(rho, below, result);
        result.status = SolveStatus::kInfeasible;
        result.iterations = iterations_;
        return true;
      }
    }
    const int entering = cand[pick].j;
    const double best_ratio = cand[pick].ratio;
    // Under Bland's rule cand is unsorted and pick indexes the chosen
    // entering column directly; the walked prefix is not a set of passed
    // breakpoints, so nothing may be flipped.
    const std::size_t flip_count = bland ? 0 : pick;

    load_column(entering, alpha, pattern);
    ftran_entering(alpha);
    pattern.clear();
    for (int i = 0; i < m_; ++i) {
      if (alpha[static_cast<std::size_t>(i)] != 0.0) pattern.push_back(i);
    }
    const double pivot_value = alpha[static_cast<std::size_t>(leaving_row)];
    if (std::abs(pivot_value) <= kWeakPivot) {
      // The BTRAN row and FTRAN column disagree or the pivot is weak;
      // refresh the factorization, or give up to the caller if fresh.
      for (const int i : pattern) alpha[static_cast<std::size_t>(i)] = 0.0;
      pattern.clear();
      if (factor_is_stale()) {
        if (!refactorize()) {
          numerics_failed_ = true;
          return false;
        }
        refresh_reduced_costs();
        continue;
      }
      numerics_failed_ = true;
      return false;
    }

    if (flip_count > 0) {
      // Apply the passed breakpoints as bound flips: accumulate the flipped
      // columns in row space and push them through one FTRAN.
      std::vector<double>& acc = flip_acc_;
      acc.assign(static_cast<std::size_t>(m_), 0.0);
      for (std::size_t k = 0; k < flip_count; ++k) {
        const int j = cand[k].j;
        const auto js = static_cast<std::size_t>(j);
        const double range = upper_[js] - lower_[js];
        const bool was_lower = state_[js] == VarState::kAtLower;
        const double delta = was_lower ? range : -range;
        if (j < n_) {
          for (int t = col_start_[js]; t < col_start_[js + 1]; ++t) {
            acc[static_cast<std::size_t>(
                row_index_[static_cast<std::size_t>(t)])] +=
                coeff_[static_cast<std::size_t>(t)] * delta;
          }
        } else {
          acc[static_cast<std::size_t>(j - n_)] += delta;
        }
        state_[js] = was_lower ? VarState::kAtUpper : VarState::kAtLower;
        x_[js] = was_lower ? upper_[js] : lower_[js];
      }
      ftran(acc);
      for (int i = 0; i < m_; ++i) {
        const double move = acc[static_cast<std::size_t>(i)];
        if (move == 0.0) continue;
        x_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] -=
            move;
      }
    }

    // The dual devex update needs the FTRAN'd entering column against the
    // pre-pivot basis: run it before the eta is appended.
    if (devex()) update_dual_devex(leaving_row, pivot_value, alpha, pattern);

    const auto q = static_cast<std::size_t>(entering);
    const double delta_q = (x_[ls] - target) / pivot_value;
    for (const int i : pattern) {
      const double a = alpha[static_cast<std::size_t>(i)];
      const auto bs =
          static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
      x_[bs] -= a * delta_q;
    }
    x_[q] += delta_q;
    x_[ls] = target;
    // Incremental reduced-cost update over the gathered pivot row:
    // d_j -= theta * alpha_j; the leaving variable picks up -theta (its
    // alpha is 1 by construction) and the entering column zeroes out.
    const double theta = reduced_d_[q] / pivot_value;
    for (const int j : alpha_cols) {
      const auto js = static_cast<std::size_t>(j);
      if (state_[js] == VarState::kBasic) continue;  // stays zero
      reduced_d_[js] -= theta * alpha_row[js];
    }
    reduced_d_[q] = 0.0;
    reduced_d_[ls] = -theta;
    state_[ls] = below ? VarState::kAtLower : VarState::kAtUpper;
    state_[q] = VarState::kBasic;
    basis_[static_cast<std::size_t>(leaving_row)] = entering;
    const bool factor_ok = factor_update(leaving_row, pivot_value, alpha,
                                         pattern);
    for (const int i : pattern) alpha[static_cast<std::size_t>(i)] = 0.0;
    pattern.clear();
    if (!factor_ok) {
      numerics_failed_ = true;
      return false;
    }

    ++iterations_;
    ++total_iterations_;
    if (best_ratio <= options_.tolerance) {
      ++consecutive_degenerate;
    } else {
      consecutive_degenerate = 0;
    }
    if (factor_rebuilt_) {
      // factor_update replaced an unstable update with a fresh factor;
      // rebase the incremental reduced costs on the new numerics.
      compute_basic_values();
      refresh_reduced_costs();
    } else if (factor_needs_refresh()) {
      if (!refactorize()) {
        numerics_failed_ = true;
        return false;
      }
      compute_basic_values();
      refresh_reduced_costs();  // drop the incremental-update drift
    }
  }
}

// ------------------------------------------------------------------- driver

bool RevisedSimplex::evict_basic_artificials() {
  std::vector<double>& rho = rho_;
  rho.assign(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i) {
    const int basic = basis_[static_cast<std::size_t>(i)];
    if (basic < first_artificial_) continue;
    std::fill(rho.begin(), rho.end(), 0.0);
    rho[static_cast<std::size_t>(i)] = 1.0;
    btran(rho);
    int replacement = -1;
    for (int j = 0; j < first_artificial_; ++j) {
      if (state_[static_cast<std::size_t>(j)] == VarState::kBasic) continue;
      if (std::abs(column_dot(j, rho)) > 1e-6) {
        replacement = j;
        break;
      }
    }
    if (replacement < 0) continue;  // redundant row; artificial stays at 0
    std::vector<double>& alpha = work_;
    std::vector<int>& pattern = pattern_;
    load_column(replacement, alpha, pattern);
    ftran_entering(alpha);
    pattern.clear();
    for (int r = 0; r < m_; ++r) {
      if (alpha[static_cast<std::size_t>(r)] != 0.0) pattern.push_back(r);
    }
    const auto bs = static_cast<std::size_t>(basic);
    x_[bs] = 0.0;
    state_[bs] = VarState::kAtLower;
    state_[static_cast<std::size_t>(replacement)] = VarState::kBasic;
    basis_[static_cast<std::size_t>(i)] = replacement;
    const bool factor_ok = factor_update(
        i, alpha[static_cast<std::size_t>(i)], alpha, pattern);
    for (const int r : pattern) alpha[static_cast<std::size_t>(r)] = 0.0;
    pattern.clear();
    if (!factor_ok) return false;
    // Degenerate exchange: the artificial sat at zero, so no values move.
  }
  return true;
}

Solution RevisedSimplex::finish_optimal() {
  Solution result;
  result.status = SolveStatus::kOptimal;
  fill_primal_point(result);
  result.iterations = iterations_;
  basis_valid_ = true;
  if (options_.want_duals) {
    // Both call sites reach here with cost_ holding the exact objective
    // (phase 2 / the post-perturbation polish), so these duals price the
    // true costs — the only state LP conflict learning may trust.
    std::vector<double>& y = duals_;
    compute_duals(y);
    result.row_duals.assign(y.begin(), y.begin() + m_);
    result.reduced_costs.resize(static_cast<std::size_t>(n_));
    for (int j = 0; j < n_; ++j) {
      result.reduced_costs[static_cast<std::size_t>(j)] =
          objective_[static_cast<std::size_t>(j)] - column_dot(j, y);
    }
  }
  return result;
}

Solution RevisedSimplex::run_two_phase() {
  Solution result;
  reset_to_slack_basis();
  if (!refactorize()) {
    numerics_failed_ = true;
    result.status = SolveStatus::kIterationLimit;
    return result;
  }
  compute_basic_values();

  bool have_artificials = false;
  for (int i = 0; i < m_; ++i) {
    if (basis_[static_cast<std::size_t>(i)] >= first_artificial_) {
      have_artificials = true;
      break;
    }
  }
  if (have_artificials) {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int j = first_artificial_; j < total_; ++j) {
      cost_[static_cast<std::size_t>(j)] = 1.0;
    }
    if (!primal_iterate(options_.max_iterations, result)) return result;
    double infeasibility = 0.0;
    for (int j = first_artificial_; j < total_; ++j) {
      infeasibility += x_[static_cast<std::size_t>(j)];
    }
    if (infeasibility > options_.tolerance * 10) {
      // Phase-1 optimum with residual infeasibility. The phase-1 duals y
      // (cost_ still holds the artificial costs here) price every real
      // column nonnegatively, so w = -y satisfies the farkas_ray sign
      // convention and aggregates to an inequality violated by at least
      // the residual infeasibility.
      std::vector<double>& y = duals_;
      compute_duals(y);
      result.farkas_ray.assign(static_cast<std::size_t>(m_), 0.0);
      for (int i = 0; i < m_; ++i) {
        const auto is = static_cast<std::size_t>(i);
        result.farkas_ray[is] = -y[is];
      }
      result.status = SolveStatus::kInfeasible;
      result.iterations = iterations_;
      return result;
    }
    if (!evict_basic_artificials()) {
      numerics_failed_ = true;
      result.status = SolveStatus::kIterationLimit;
      result.iterations = iterations_;
      return result;
    }
    for (int j = first_artificial_; j < total_; ++j) {
      const auto js = static_cast<std::size_t>(j);
      lower_[js] = 0.0;
      upper_[js] = 0.0;
      if (state_[js] != VarState::kBasic) {
        state_[js] = VarState::kAtLower;
        x_[js] = 0.0;
      }
    }
    values_dirty_ = true;
  }

  std::fill(cost_.begin(), cost_.end(), 0.0);
  for (int j = 0; j < n_; ++j) {
    cost_[static_cast<std::size_t>(j)] = objective_[static_cast<std::size_t>(j)];
  }
  if (!primal_iterate(options_.max_iterations, result)) {
    // Phase 2 keeps primal feasibility, so even a budget-truncated solve
    // reports the current point — with the objective computed from
    // objective_, never from the active cost_ vector. (values_dirty_ means
    // the budget died before the basic values were refreshed; no point to
    // report then.)
    if (!numerics_failed_ && !values_dirty_) fill_primal_point(result);
    return result;
  }
  return finish_optimal();
}

/// Dual-feasible crash start: every structural variable parks at the bound
/// its objective coefficient prefers, every slack becomes basic (identity
/// basis, empty eta file). Reduced costs are then feasible by construction
/// and the dual simplex can cold-start without artificials or phase 1.
void RevisedSimplex::reset_to_dual_crash() {
  etas_.clear();
  eta_index_.clear();
  eta_value_.clear();
  factor_etas_ = 0;
  basis_valid_ = false;

  for (int j = 0; j < n_; ++j) {
    const auto js = static_cast<std::size_t>(j);
    const double c = objective_[js];
    bool at_lower;
    if (c > options_.tolerance) {
      at_lower = true;
    } else if (c < -options_.tolerance) {
      at_lower = false;
    } else {
      at_lower = std::abs(lower_[js]) <= std::abs(upper_[js]);
    }
    state_[js] = at_lower ? VarState::kAtLower : VarState::kAtUpper;
    x_[js] = at_lower ? lower_[js] : upper_[js];
  }
  for (int i = 0; i < m_; ++i) {
    const auto is = static_cast<std::size_t>(i);
    const auto slack = static_cast<std::size_t>(n_ + i);
    const auto art = static_cast<std::size_t>(first_artificial_ + i);
    state_[slack] = VarState::kBasic;
    basis_[is] = n_ + i;
    artificial_sign_[is] = 1.0;
    lower_[art] = 0.0;
    upper_[art] = 0.0;
    state_[art] = VarState::kAtLower;
    x_[art] = 0.0;
  }
  // The crash basis is the identity; the eta file represents it as an
  // empty product, the LU factors it explicitly (all singleton pivots).
  if (lu() && !refactorize()) numerics_failed_ = true;

  // Basic slack values = row residuals (B is the identity). Out-of-bounds
  // values are exactly the primal infeasibilities the dual run repairs.
  std::vector<double>& residual = work2_;
  for (int i = 0; i < m_; ++i) {
    residual[static_cast<std::size_t>(i)] = rhs_[static_cast<std::size_t>(i)];
  }
  for (int j = 0; j < n_; ++j) {
    const auto js = static_cast<std::size_t>(j);
    const double v = x_[js];
    if (v == 0.0) continue;
    for (int k = col_start_[js]; k < col_start_[js + 1]; ++k) {
      residual[static_cast<std::size_t>(
          row_index_[static_cast<std::size_t>(k)])] -=
          coeff_[static_cast<std::size_t>(k)] * v;
    }
  }
  for (int i = 0; i < m_; ++i) {
    x_[static_cast<std::size_t>(n_ + i)] =
        residual[static_cast<std::size_t>(i)];
    residual[static_cast<std::size_t>(i)] = 0.0;
  }
  values_dirty_ = false;
}

/// Dual reoptimization from the current basis, then an exact-cost primal
/// polish. Sets numerics_failed_ when the caller should restart elsewhere.
Solution RevisedSimplex::reoptimize_from_basis() {
  // Phase-2 costs with a tiny deterministic anti-degeneracy perturbation:
  // the paper's big-M binary models are massively dual-degenerate, and
  // distinct ratios keep the dual simplex from stalling on zero-gain
  // pivots. The perturbation leans each nonbasic variable further into
  // dual feasibility, and the exact-cost primal polish below removes its
  // O(tolerance) footprint before the solution is reported.
  const double scale = options_.tolerance * 16.0;
  std::fill(cost_.begin(), cost_.end(), 0.0);
  for (int j = 0; j < n_; ++j) {
    const auto js = static_cast<std::size_t>(j);
    const double jitter =
        scale *
        (1.0 + static_cast<double>((static_cast<unsigned>(j) * 2654435761u) >>
                                   24 & 0xffu) /
                   256.0);
    const double lean = state_[js] == VarState::kAtUpper ? -jitter : jitter;
    cost_[js] = objective_[js] + lean;
  }

  Solution result;
  if (!dual_iterate(options_.max_iterations, result)) {
    numerics_failed_ = true;
    return result;
  }
  if (result.status == SolveStatus::kInfeasible) {
    result.iterations = iterations_;
    basis_valid_ = true;  // still dual feasible and reusable
    return result;
  }
  if (result.status == SolveStatus::kIterationLimit) {
    basis_valid_ = false;  // partial reoptimize: do not trust for warm start
    return result;
  }
  // Primal feasible: drop the perturbation and polish with exact costs.
  std::fill(cost_.begin(), cost_.end(), 0.0);
  for (int j = 0; j < n_; ++j) {
    cost_[static_cast<std::size_t>(j)] = objective_[static_cast<std::size_t>(j)];
  }
  if (!primal_iterate(options_.max_iterations, result)) {
    if (!numerics_failed_) {
      basis_valid_ = false;  // pivot budget exhausted
      // The polish iterates stay primal feasible, so the truncated solve
      // still reports a usable point. The objective comes from objective_;
      // the leaned cost_ perturbation never reaches the caller.
      if (!values_dirty_) fill_primal_point(result);
    }
    return result;
  }
  return finish_optimal();
}

Solution RevisedSimplex::solve_cold() {
  flush_row_additions();
  iterations_ = 0;
  numerics_failed_ = false;
  reset_to_dual_crash();
  Solution result = reoptimize_from_basis();
  if (!numerics_failed_) return result;
  // Dual crash broke down numerically: retry with the artificial-variable
  // two-phase primal, the same method as the dense oracle.
  iterations_ = 0;
  numerics_failed_ = false;
  result = run_two_phase();
  if (!numerics_failed_ || !lu()) return result;
  // Second rung of the recovery ladder: two-phase failed *under the LU*,
  // which points at the Forrest-Tomlin factorization itself. Downgrade
  // this instance to the product-form eta file (sticky for its lifetime)
  // and retry once; callers keep the dense tableau as the last rung.
  options_.factorization = Factorization::kEta;
  ++eta_fallbacks_;
  basis_valid_ = false;
  iterations_ = 0;
  numerics_failed_ = false;
  return run_two_phase();
}

Solution RevisedSimplex::reoptimize() {
  flush_row_additions();
  if (!basis_valid_) return solve_cold();
  iterations_ = 0;
  numerics_failed_ = false;
  Solution result = reoptimize_from_basis();
  if (!numerics_failed_) return result;
  return solve_cold();
}

}  // namespace fpva::lp
