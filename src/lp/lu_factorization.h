// Markowitz-pivoted sparse LU factorization of a simplex basis with
// Forrest-Tomlin column updates and warm row addition.
//
// The factorization maintains B = L * U where L is a product of elementary
// operators (column etas from the Markowitz elimination plus row etas from
// Forrest-Tomlin updates) and U is stored explicitly as sparse rows with a
// row/column pivot ordering. Replacing one basis column folds the FTRAN'd
// spike into U and appends a single bounded row eta, so fill grows with the
// spike size instead of compounding per pivot the way a product-form eta
// file does. Appending a row (a cut with its slack taking the new basis
// position) is one U^T solve plus one row eta — no refactorization.
//
// The class is deliberately standalone (columns come in as index/value
// views, vectors go in and out as dense arrays) so the differential fuzz
// harness in tests/lu_update_test.cpp can drive it against a dense solver
// and a product-form eta oracle without going through RevisedSimplex.
//
// Index spaces: FTRAN maps a vector indexed by row to a vector indexed by
// basis position (the coefficient of basis column p); BTRAN maps a vector
// indexed by basis position to one indexed by row. Rows and positions both
// range over [0, dimension()).
#ifndef FPVA_LP_LU_FACTORIZATION_H
#define FPVA_LP_LU_FACTORIZATION_H

#include <vector>

namespace fpva::lp {

/// One sparse basis column handed to LuFactorization::factorize — parallel
/// row-index / value views into caller-owned storage. Row indices must be
/// unique within a column.
struct BasisColumn {
  const int* rows = nullptr;
  const double* values = nullptr;
  int size = 0;
};

class LuFactorization {
 public:
  struct Options {
    /// Markowitz threshold pivoting: a pivot must reach this fraction of
    /// the largest entry in its column.
    double pivot_tolerance = 0.01;
    /// Entries below this magnitude are dropped during elimination.
    double drop_tolerance = 1e-12;
    /// A pivot (or updated diagonal) below this magnitude means singular.
    double singular_tolerance = 1e-11;
    /// Forrest-Tomlin consistency: the updated diagonal must match
    /// old_diagonal * alpha_pivot (a determinant identity) to this
    /// relative tolerance, else the update reports numerical trouble.
    double stability_tolerance = 1e-5;
    /// Updates (column replacements + row additions) after which
    /// needs_refactor() turns true.
    int max_updates = 100;
    /// needs_refactor() also turns true when the operator file grows past
    /// fill_ratio * (fresh factor nonzeros) + dimension().
    double fill_ratio = 3.0;
  };

  LuFactorization() = default;
  explicit LuFactorization(Options options) : options_(options) {}

  /// Factorizes the m x m basis whose position-p column is columns[p].
  /// Returns false (and leaves the factorization invalid) when the basis
  /// is structurally or numerically singular.
  bool factorize(int m, const std::vector<BasisColumn>& columns);

  bool valid() const { return valid_; }
  int dimension() const { return m_; }

  /// dense := B^-1 dense. With save_spike, the partial result L^-1 a is
  /// stashed for a following update() of the column this vector came from;
  /// later ftran calls without save_spike leave the stash untouched.
  void ftran(std::vector<double>& dense, bool save_spike = false) const;

  /// dense := B^-T dense.
  void btran(std::vector<double>& dense) const;

  /// Forrest-Tomlin update: the basis column at `position` is replaced by
  /// the column whose ftran(..., /*save_spike=*/true) produced the saved
  /// spike. `pivot_value` is that FTRAN's entry at `position` (the simplex
  /// pivot element), used for the determinant-identity stability check.
  /// Returns false on instability or a singular replacement; the caller
  /// should refactorize from the new basis.
  bool update(int position, double pivot_value);

  /// Appends row m and basis position m, extending the basis as
  /// B_new = [[B, 0], [a^T, 1]] — the new position holds the unit column
  /// of the new row (a cut's slack). `positions`/`values` give a^T, the
  /// new row's coefficients on the current basic columns, indexed by basis
  /// position. Returns false only when the factorization is invalid.
  bool add_row(const std::vector<int>& positions,
               const std::vector<double>& values);

  /// True when the update/fill policy says a fresh factorization pays off.
  bool needs_refactor() const;

  int updates_since_factor() const { return updates_; }
  long fill() const { return nnz_; }
  long factor_fill() const { return factor_nnz_; }

 private:
  /// Elementary column operator from the elimination: subtracts multiples
  /// of the pivot row's value from the listed rows (FTRAN order).
  struct LCol {
    int pivot_row = 0;
    int start = 0;  ///< first slot in l_rows_/l_vals_
    int end = 0;
  };
  /// Elementary row operator from a Forrest-Tomlin update or row addition:
  /// target_row -= sum multipliers * listed rows.
  struct RowEta {
    int target_row = 0;
    int start = 0;  ///< first slot in r_rows_/r_vals_
    int end = 0;
  };

  void clear_factor();
  void erase_u_entry(int row, int col);
  void erase_u_col_row(int col, int row);

  Options options_;
  int m_ = 0;
  bool valid_ = false;

  std::vector<LCol> lcols_;
  std::vector<int> l_rows_;
  std::vector<double> l_vals_;
  std::vector<RowEta> retas_;
  std::vector<int> r_rows_;
  std::vector<double> r_vals_;

  // U: per-row off-diagonal entries (column = basis position) plus the
  // diagonal, and the transpose pattern for column deletion on update.
  std::vector<std::vector<int>> u_cols_;
  std::vector<std::vector<double>> u_vals_;
  std::vector<std::vector<int>> u_col_rows_;
  std::vector<double> diag_;  ///< pivot value, indexed by row

  // Pivot ordering: order k pairs row_of_order_[k] with col_of_order_[k].
  std::vector<int> row_of_order_, col_of_order_;
  std::vector<int> order_of_row_, order_of_col_;

  int updates_ = 0;
  long nnz_ = 0;         ///< live operator + U entries
  long factor_nnz_ = 0;  ///< nnz_ right after the last factorize()

  // Saved FTRAN intermediate (L^-1 a, indexed by row) for update().
  mutable std::vector<double> spike_;
  mutable std::vector<int> spike_rows_;
  mutable bool spike_valid_ = false;

  // Factorization working matrix (members to reuse allocations).
  std::vector<std::vector<int>> w_row_cols_;
  std::vector<std::vector<double>> w_row_vals_;
  std::vector<std::vector<int>> w_col_rows_;
  std::vector<char> w_row_active_, w_col_active_;

  mutable std::vector<double> work_;   ///< ftran/btran solve scratch
  mutable std::vector<double> work2_;  ///< second solve scratch
  std::vector<double> acc_;            ///< update/elimination row scratch
  std::vector<int> stamp_;             ///< acc_ column membership stamps
  int epoch_ = 0;
  std::vector<int> pos_, pos_stamp_;   ///< row-slot index scratch
  int pos_epoch_ = 0;

  bool select_pivot(int* pivot_row, int* pivot_col) const;
  double w_entry(int row, int col) const;
};

}  // namespace fpva::lp

#endif  // FPVA_LP_LU_FACTORIZATION_H
