#include "lp/model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace fpva::lp {

using common::cat;
using common::check;

namespace {
constexpr double kBoundLimit = 1e15;
}

int Model::add_variable(double lower, double upper, double objective,
                        std::string name) {
  check(std::isfinite(lower) && std::isfinite(upper) &&
            std::abs(lower) < kBoundLimit && std::abs(upper) < kBoundLimit,
        "lp::Model: variable bounds must be finite");
  if (!(lower <= upper)) {
    common::fail(cat("lp::Model: empty domain [", lower, ", ", upper,
                     "] for variable ", name));
  }
  if (variables_.capacity() == 0) variables_.reserve(32);
  variables_.push_back(Variable{lower, upper, objective, std::move(name)});
  return static_cast<int>(variables_.size()) - 1;
}

void Model::set_bounds(int variable, double lower, double upper) {
  check(variable >= 0 && variable < variable_count(),
        "lp::Model::set_bounds: variable out of range");
  check(std::isfinite(lower) && std::isfinite(upper) && lower <= upper,
        "lp::Model::set_bounds: bad bounds");
  variables_[static_cast<std::size_t>(variable)].lower = lower;
  variables_[static_cast<std::size_t>(variable)].upper = upper;
}

void Model::set_objective(int variable, double objective) {
  check(variable >= 0 && variable < variable_count(),
        "lp::Model::set_objective: variable out of range");
  variables_[static_cast<std::size_t>(variable)].objective = objective;
}

int Model::add_constraint(std::vector<Term> terms, Sense sense, double rhs) {
  for (const Term& term : terms) {
    check(term.variable >= 0 && term.variable < variable_count(),
          "lp::Model::add_constraint: term references unknown variable");
    check(std::isfinite(term.coefficient),
          "lp::Model::add_constraint: non-finite coefficient");
  }
  check(std::isfinite(rhs), "lp::Model::add_constraint: non-finite rhs");
  if (constraints_.capacity() == 0) constraints_.reserve(16);
  constraints_.push_back(Constraint{std::move(terms), sense, rhs});
  return static_cast<int>(constraints_.size()) - 1;
}

const Variable& Model::variable(int index) const {
  check(index >= 0 && index < variable_count(),
        "lp::Model::variable: out of range");
  return variables_[static_cast<std::size_t>(index)];
}

const Constraint& Model::constraint(int index) const {
  check(index >= 0 && index < constraint_count(),
        "lp::Model::constraint: out of range");
  return constraints_[static_cast<std::size_t>(index)];
}

double Model::objective_value(const std::vector<double>& values) const {
  check(values.size() == variables_.size(),
        "lp::Model::objective_value: wrong arity");
  double total = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    total += variables_[i].objective * values[i];
  }
  return total;
}

double Model::max_violation(const std::vector<double>& values) const {
  check(values.size() == variables_.size(),
        "lp::Model::max_violation: wrong arity");
  double worst = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    worst = std::max(worst, variables_[i].lower - values[i]);
    worst = std::max(worst, values[i] - variables_[i].upper);
  }
  for (const Constraint& row : constraints_) {
    double lhs = 0.0;
    for (const Term& term : row.terms) {
      lhs += term.coefficient * values[static_cast<std::size_t>(term.variable)];
    }
    switch (row.sense) {
      case Sense::kLessEqual:
        worst = std::max(worst, lhs - row.rhs);
        break;
      case Sense::kGreaterEqual:
        worst = std::max(worst, row.rhs - lhs);
        break;
      case Sense::kEqual:
        worst = std::max(worst, std::abs(lhs - row.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace fpva::lp
