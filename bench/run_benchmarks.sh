#!/usr/bin/env bash
# Runs the registered Google-Benchmark binaries and records the results at
# the repo root, so the perf trajectory is tracked from PR to PR:
#
#   BENCH_ilp.json       <- bench_ilp_solver   (LP/ILP solver substrate)
#   BENCH_batch_sim.json <- bench_batch_sim_micro (campaign engines)
#   BENCH_parallel.json  <- bench_parallel     (thread-scaling probes)
#   BENCH_diagnosis.json <- bench_diagnosis    (adaptive vs static diagnosis)
#
# Usage:
#   bench/run_benchmarks.sh                 # full run (default min time)
#   BENCH_MIN_TIME=0.01 bench/run_benchmarks.sh   # CI smoke: one rep each
#   BUILD_DIR=out bench/run_benchmarks.sh   # non-default build directory
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"

extra_args=()
if [[ -n "${BENCH_MIN_TIME:-}" ]]; then
  extra_args+=("--benchmark_min_time=${BENCH_MIN_TIME}")
fi
# Record the runner's parallel capacity in the JSON context so the
# thread-scaling curves in BENCH_parallel.json can be read against the
# hardware they were measured on.
extra_args+=("--benchmark_context=hardware_concurrency=$(nproc)")

failures=0
run_one() {
  local binary="$1" out="$2"
  if [[ ! -x "$build_dir/$binary" ]]; then
    echo "run_benchmarks: skipping $binary ($build_dir/$binary not built;" \
         "is Google Benchmark installed?)" >&2
    return 0
  fi
  echo "== $binary -> $out"
  if ! "$build_dir/$binary" \
      "${extra_args[@]}" \
      --benchmark_format=console \
      --benchmark_out="$repo_root/$out" \
      --benchmark_out_format=json; then
    echo "run_benchmarks: $binary failed" >&2
    failures=$((failures + 1))
  fi
}

run_one bench_ilp_solver BENCH_ilp.json
run_one bench_batch_sim_micro BENCH_batch_sim.json
run_one bench_parallel BENCH_parallel.json
run_one bench_diagnosis BENCH_diagnosis.json

exit "$failures"
