// E8 -- ILP model fidelity and solver micro-benchmarks.
//
// Times the solver substrate on (a) generic LP/MIP kernels and (b) the
// paper's flow-path and cut-set models (constraints (1)-(4),(6),(9)) on
// full arrays up to 6x6, and verifies the ILP engine's optima against the
// constructive engine's counts.
//
// Before/after in one run: the *Legacy / *Dense variants pin the pre-PR-2
// configuration (dense-tableau cold start per node, most-fractional
// branching, no presolve/propagation/warm start, Dantzig pricing, no
// probing/cliques/orbit rows), so the node-count and wall-time effect of
// the accelerated pipeline is visible directly in the report. Counters:
// nodes = branch-and-bound nodes, pivots = simplex pivots summed over all
// node LPs, cuts = root clique/cover cutting planes kept, budget = minimum
// path/cut count found, proven = 1 when the budget carries an optimality
// certificate.
#include <benchmark/benchmark.h>

#include "core/ilp_models.h"
#include "core/path_planner.h"
#include "grid/presets.h"
#include "lp/simplex.h"

namespace {

using namespace fpva;

/// The pre-PR-2 search pipeline, kept for differential testing and as the
/// baseline side of the before/after report. All PR-3 mechanisms (devex
/// pricing, probing, clique cuts, orbit rows, input-order chain branching)
/// are individually switchable; this configuration turns everything off,
/// reproducing the original cold-start most-fractional search.
ilp::Options legacy_options() { return ilp::legacy_solver_options(); }

lp::Model transportation_model(int n) {
  lp::Model model;
  std::vector<int> vars;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      vars.push_back(model.add_variable(
          0.0, 100.0, static_cast<double>((i * 7 + j * 3) % 5 + 1)));
    }
  }
  for (int i = 0; i < n; ++i) {
    std::vector<lp::Term> row;
    for (int j = 0; j < n; ++j) {
      row.push_back({vars[static_cast<std::size_t>(i * n + j)], 1.0});
    }
    model.add_constraint(std::move(row), lp::Sense::kEqual, 10.0);
  }
  for (int j = 0; j < n; ++j) {
    std::vector<lp::Term> col;
    for (int i = 0; i < n; ++i) {
      col.push_back({vars[static_cast<std::size_t>(i * n + j)], 1.0});
    }
    model.add_constraint(std::move(col), lp::Sense::kEqual, 10.0);
  }
  return model;
}

void run_simplex_transportation(benchmark::State& state,
                                lp::Algorithm algorithm) {
  const int n = static_cast<int>(state.range(0));
  long iterations = 0;
  for (auto _ : state) {
    lp::Model model = transportation_model(n);
    lp::SolveOptions options;
    options.algorithm = algorithm;
    const auto solution = lp::solve(model, options);
    iterations = solution.iterations;
    benchmark::DoNotOptimize(solution.objective);
  }
  state.counters["pivots"] = static_cast<double>(iterations);
}

void BM_SimplexTransportation(benchmark::State& state) {
  run_simplex_transportation(state, lp::Algorithm::kRevised);
}
BENCHMARK(BM_SimplexTransportation)->Arg(4)->Arg(8)->Arg(12);

void BM_SimplexTransportationDense(benchmark::State& state) {
  run_simplex_transportation(state, lp::Algorithm::kDenseTableau);
}
BENCHMARK(BM_SimplexTransportationDense)->Arg(4)->Arg(8)->Arg(12);

ilp::Model knapsack_model(int n) {
  ilp::Model model;
  std::vector<lp::Term> weight;
  for (int i = 0; i < n; ++i) {
    const int x = model.add_binary(-static_cast<double>((i * 13) % 9 + 1));
    weight.push_back({x, static_cast<double>((i * 5) % 7 + 1)});
  }
  model.add_constraint(std::move(weight), lp::Sense::kLessEqual,
                       static_cast<double>(2 * n));
  return model;
}

void run_knapsack(benchmark::State& state, const ilp::Options& base) {
  const int n = static_cast<int>(state.range(0));
  long nodes = 0;
  long pivots = 0;
  for (auto _ : state) {
    ilp::Model model = knapsack_model(n);
    ilp::Options options = base;
    options.objective_is_integral = true;
    const auto result = ilp::solve(model, options);
    nodes = result.nodes;
    pivots = result.lp_pivots;
    benchmark::DoNotOptimize(result.objective);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["pivots"] = static_cast<double>(pivots);
}

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
  run_knapsack(state, ilp::Options{});
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(10)->Arg(16)->Arg(24);

void BM_BranchAndBoundKnapsackLegacy(benchmark::State& state) {
  run_knapsack(state, legacy_options());
}
BENCHMARK(BM_BranchAndBoundKnapsackLegacy)->Arg(10)->Arg(16)->Arg(24);

void run_flow_path(benchmark::State& state, const ilp::Options& base,
                   bool crosscheck) {
  const int n = static_cast<int>(state.range(0));
  const grid::ValveArray array = grid::full_array(n, n);
  long nodes = 0;
  long pivots = 0;
  long cuts = 0;
  int budget = 0;
  long refactors = 0;
  long updates = 0;
  long warm_rows = 0;
  long conflicts = 0;
  long learned = 0;
  long backjumps = 0;
  long deleted = 0;
  long lp_nogoods = 0;
  long restarts = 0;
  for (auto _ : state) {
    const auto result = core::find_minimum_flow_paths(array, 1, 8, base);
    if (!result.has_value()) {
      state.SkipWithError("path ILP infeasible");
      break;
    }
    nodes = result->ilp.nodes;
    pivots = result->ilp.lp_pivots;
    cuts = result->ilp.cuts_added;
    budget = result->path_budget;
    refactors = result->ilp.lp_refactorizations;
    updates = result->ilp.lp_basis_updates;
    warm_rows = result->ilp.warm_cut_rows;
    conflicts = result->ilp.conflicts;
    learned = result->ilp.nogoods_learned;
    backjumps = result->ilp.backjumps;
    deleted = result->ilp.nogoods_deleted;
    lp_nogoods = result->ilp.lp_nogoods_learned;
    restarts = result->ilp.restarts;
    benchmark::DoNotOptimize(result->path_budget);
    if (crosscheck) {
      // The ILP optimum can never exceed the constructive engine's count.
      core::PathPlanner planner(array);
      const auto greedy = planner.cover(std::vector<bool>(
          static_cast<std::size_t>(array.valve_count()), true));
      if (result->path_budget > static_cast<int>(greedy.paths.size())) {
        state.SkipWithError("ILP worse than constructive engine");
        break;
      }
    }
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["pivots"] = static_cast<double>(pivots);
  state.counters["cuts"] = static_cast<double>(cuts);
  state.counters["budget"] = static_cast<double>(budget);
  state.counters["refactors"] = static_cast<double>(refactors);
  state.counters["updates"] = static_cast<double>(updates);
  state.counters["warmrows"] = static_cast<double>(warm_rows);
  state.counters["conflicts"] = static_cast<double>(conflicts);
  state.counters["learned"] = static_cast<double>(learned);
  state.counters["backjumps"] = static_cast<double>(backjumps);
  state.counters["deleted"] = static_cast<double>(deleted);
  state.counters["lpnogoods"] = static_cast<double>(lp_nogoods);
  state.counters["restarts"] = static_cast<double>(restarts);
}

/// LP-refutation learning plus Luby restarts on top of the full pipeline
/// (the PR's tentpole). Shared by the *LpLearn variants below.
ilp::Options lp_learn_options() {
  ilp::Options options;
  options.conflict_backjumping = true;
  options.lp_conflict_learning = true;
  options.restart_interval = 64;
  return options;
}

void BM_FlowPathIlp(benchmark::State& state) {
  run_flow_path(state, ilp::Options{}, /*crosscheck=*/true);
}
BENCHMARK(BM_FlowPathIlp)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_FlowPathIlpLegacy(benchmark::State& state) {
  run_flow_path(state, legacy_options(), /*crosscheck=*/false);
}
BENCHMARK(BM_FlowPathIlpLegacy)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

// The PR-4 pipeline (everything on, conflict learning off): pins the
// pre-learning node counts in the committed baseline, so the claim that
// conflict_learning=off reproduces them bit-exactly stays CI-gated.
void BM_FlowPathIlpNoLearn(benchmark::State& state) {
  ilp::Options options;
  options.conflict_learning = false;
  run_flow_path(state, options, /*crosscheck=*/false);
}
BENCHMARK(BM_FlowPathIlpNoLearn)
    ->Arg(3)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

// The tentpole configuration: every LP refutation learns a nogood and the
// search restarts on the Luby schedule, keeping the pool and activities.
void BM_FlowPathIlpLpLearn(benchmark::State& state) {
  run_flow_path(state, lp_learn_options(), /*crosscheck=*/false);
}
BENCHMARK(BM_FlowPathIlpLpLearn)
    ->Arg(3)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

// Full find_minimum_cut_sets pipeline to *proven* optimality: budget
// escalation with infeasibility certificates, devex pricing, probing,
// clique cuts, orbit symmetry rows and input-order chain branching.
// 4x4 was minutes-to-optimality before PR 3; the acceptance gate is
// 3x3 < 1 s and 4x4 < 10 s on CI hardware.
void run_cut_set(benchmark::State& state, const ilp::Options& base) {
  const int n = static_cast<int>(state.range(0));
  const grid::ValveArray array = grid::full_array(n, n);
  long nodes = 0;
  long pivots = 0;
  long cuts = 0;
  int budget = 0;
  bool proven = false;
  long refactors = 0;
  long updates = 0;
  long warm_rows = 0;
  long conflicts = 0;
  long learned = 0;
  long backjumps = 0;
  long deleted = 0;
  long lp_nogoods = 0;
  long restarts = 0;
  for (auto _ : state) {
    const auto result = core::find_minimum_cut_sets(array, 1, 8, true, base);
    if (!result.has_value()) {
      state.SkipWithError("cut ILP infeasible");
      break;
    }
    nodes = result->ilp.nodes;
    pivots = result->ilp.lp_pivots;
    cuts = result->ilp.cuts_added;
    budget = result->cut_budget;
    proven = result->proven_minimal;
    refactors = result->ilp.lp_refactorizations;
    updates = result->ilp.lp_basis_updates;
    warm_rows = result->ilp.warm_cut_rows;
    conflicts = result->ilp.conflicts;
    learned = result->ilp.nogoods_learned;
    backjumps = result->ilp.backjumps;
    deleted = result->ilp.nogoods_deleted;
    lp_nogoods = result->ilp.lp_nogoods_learned;
    restarts = result->ilp.restarts;
    benchmark::DoNotOptimize(result->cut_budget);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["pivots"] = static_cast<double>(pivots);
  state.counters["cuts"] = static_cast<double>(cuts);
  state.counters["budget"] = static_cast<double>(budget);
  state.counters["proven"] = proven ? 1.0 : 0.0;
  state.counters["refactors"] = static_cast<double>(refactors);
  state.counters["updates"] = static_cast<double>(updates);
  state.counters["warmrows"] = static_cast<double>(warm_rows);
  state.counters["conflicts"] = static_cast<double>(conflicts);
  state.counters["learned"] = static_cast<double>(learned);
  state.counters["backjumps"] = static_cast<double>(backjumps);
  state.counters["deleted"] = static_cast<double>(deleted);
  state.counters["lpnogoods"] = static_cast<double>(lp_nogoods);
  state.counters["restarts"] = static_cast<double>(restarts);
}

void BM_CutSetIlp(benchmark::State& state) {
  run_cut_set(state, ilp::Options{});
}
BENCHMARK(BM_CutSetIlp)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CutSetIlpLegacy(benchmark::State& state) {
  run_cut_set(state, legacy_options());
}
BENCHMARK(BM_CutSetIlpLegacy)->Arg(2)->Unit(benchmark::kMillisecond);

// See BM_FlowPathIlpNoLearn: the PR-4 cut-set counters, kept pinned.
void BM_CutSetIlpNoLearn(benchmark::State& state) {
  ilp::Options options;
  options.conflict_learning = false;
  run_cut_set(state, options);
}
BENCHMARK(BM_CutSetIlpNoLearn)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// See BM_FlowPathIlpLpLearn: LP-driven learning + restarts on the cut-set
// escalation (the ISSUE-9 scoreboard at bench scale).
void BM_CutSetIlpLpLearn(benchmark::State& state) {
  run_cut_set(state, lp_learn_options());
}
BENCHMARK(BM_CutSetIlpLpLearn)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The scaling frontier: 5x5 to proven optimality under a fixed time limit
// (unreachable before PR 3 — the 4x4 could not even finish in minutes).
void BM_CutSetIlpScaling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::ValveArray array = grid::full_array(n, n);
  long nodes = 0;
  bool proven = false;
  for (auto _ : state) {
    ilp::Options options;
    options.time_limit_seconds = 30.0;
    const auto result = core::find_minimum_cut_sets(array, 1, 8, true,
                                                    options);
    proven = result.has_value() && result->proven_minimal;
    nodes = result.has_value() ? result->ilp.nodes : 0;
    benchmark::DoNotOptimize(result.has_value());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["proven"] = proven ? 1.0 : 0.0;
}
BENCHMARK(BM_CutSetIlpScaling)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_ConstructivePathCover(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::ValveArray array = grid::full_array(n, n);
  for (auto _ : state) {
    core::PathPlanner planner(array);
    const auto result = planner.cover(std::vector<bool>(
        static_cast<std::size_t>(array.valve_count()), true));
    benchmark::DoNotOptimize(result.paths.size());
  }
}
BENCHMARK(BM_ConstructivePathCover)->Arg(5)->Arg(10)->Arg(20)->Arg(30)
    ->Unit(benchmark::kMillisecond);

}  // namespace
