// E8 -- ILP model fidelity and solver micro-benchmarks.
//
// Times the in-house simplex/branch-and-bound substrate on (a) generic MIP
// kernels and (b) the paper's flow-path and cut-set models (constraints
// (1)-(4),(6),(9)) on small arrays, and verifies the ILP engine's optima
// against the constructive engine's counts.
#include <benchmark/benchmark.h>

#include "core/ilp_models.h"
#include "core/path_planner.h"
#include "grid/presets.h"
#include "lp/simplex.h"

namespace {

using namespace fpva;

void BM_SimplexTransportation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    lp::Model model;
    std::vector<int> vars;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        vars.push_back(model.add_variable(
            0.0, 100.0, static_cast<double>((i * 7 + j * 3) % 5 + 1)));
      }
    }
    for (int i = 0; i < n; ++i) {
      std::vector<lp::Term> row;
      for (int j = 0; j < n; ++j) {
        row.push_back({vars[static_cast<std::size_t>(i * n + j)], 1.0});
      }
      model.add_constraint(std::move(row), lp::Sense::kEqual, 10.0);
    }
    for (int j = 0; j < n; ++j) {
      std::vector<lp::Term> col;
      for (int i = 0; i < n; ++i) {
        col.push_back({vars[static_cast<std::size_t>(i * n + j)], 1.0});
      }
      model.add_constraint(std::move(col), lp::Sense::kEqual, 10.0);
    }
    const auto solution = lp::solve(model);
    benchmark::DoNotOptimize(solution.objective);
  }
}
BENCHMARK(BM_SimplexTransportation)->Arg(4)->Arg(8)->Arg(12);

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ilp::Model model;
    std::vector<lp::Term> weight;
    for (int i = 0; i < n; ++i) {
      const int x = model.add_binary(-static_cast<double>((i * 13) % 9 + 1));
      weight.push_back({x, static_cast<double>((i * 5) % 7 + 1)});
    }
    model.add_constraint(std::move(weight), lp::Sense::kLessEqual,
                         static_cast<double>(2 * n));
    ilp::Options options;
    options.objective_is_integral = true;
    const auto result = ilp::solve(model, options);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(10)->Arg(16)->Arg(24);

void BM_FlowPathIlp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::ValveArray array = grid::full_array(n, n);
  for (auto _ : state) {
    const auto result = core::find_minimum_flow_paths(array, 1, 6);
    if (!result.has_value()) state.SkipWithError("path ILP infeasible");
    benchmark::DoNotOptimize(result->path_budget);
    // The ILP optimum can never exceed the constructive engine's count.
    core::PathPlanner planner(array);
    const auto greedy = planner.cover(std::vector<bool>(
        static_cast<std::size_t>(array.valve_count()), true));
    if (result->path_budget > static_cast<int>(greedy.paths.size())) {
      state.SkipWithError("ILP worse than constructive engine");
    }
  }
}
BENCHMARK(BM_FlowPathIlp)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_CutSetIlp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::ValveArray array = grid::full_array(n, n);
  for (auto _ : state) {
    const auto result = core::find_minimum_cut_sets(array, 1, 6, true);
    if (!result.has_value()) state.SkipWithError("cut ILP infeasible");
    benchmark::DoNotOptimize(result->cut_budget);
  }
}
BENCHMARK(BM_CutSetIlp)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_ConstructivePathCover(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::ValveArray array = grid::full_array(n, n);
  for (auto _ : state) {
    core::PathPlanner planner(array);
    const auto result = planner.cover(std::vector<bool>(
        static_cast<std::size_t>(array.valve_count()), true));
    benchmark::DoNotOptimize(result.paths.size());
  }
}
BENCHMARK(BM_ConstructivePathCover)->Arg(5)->Arg(10)->Arg(20)->Arg(30)
    ->Unit(benchmark::kMillisecond);

}  // namespace
