// E7b -- Google-Benchmark view of the campaign engines.
//
// bench_batch_sim remains the acceptance harness (bit-identical results +
// 10x floor, table output); this binary registers the same campaign kernels
// with Google Benchmark so bench/run_benchmarks.sh can record the perf
// trajectory as BENCH_batch_sim.json alongside BENCH_ilp.json. Trials are
// kept small: the point is a comparable time series, not a full study.
#include <benchmark/benchmark.h>

#include "core/generator.h"
#include "grid/presets.h"
#include "sim/campaign.h"

namespace {

using namespace fpva;

sim::CampaignOptions micro_campaign() {
  sim::CampaignOptions campaign;
  campaign.trials_per_count = 200;
  campaign.min_faults = 1;
  campaign.max_faults = 5;
  return campaign;
}

void BM_CampaignScalar(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::ValveArray array = grid::full_array(n, n);
  core::GeneratorOptions generator_options;
  generator_options.hierarchical = true;
  const auto set = core::generate_test_set(array, generator_options);
  const sim::Simulator simulator(array);
  const sim::CampaignOptions campaign = micro_campaign();
  long detected = 0;
  for (auto _ : state) {
    const auto result =
        sim::run_campaign_scalar(simulator, set.vectors, campaign);
    detected = result.total_detected();
    benchmark::DoNotOptimize(detected);
  }
  state.counters["detected"] = static_cast<double>(detected);
}
BENCHMARK(BM_CampaignScalar)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_CampaignBatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::ValveArray array = grid::full_array(n, n);
  core::GeneratorOptions generator_options;
  generator_options.hierarchical = true;
  const auto set = core::generate_test_set(array, generator_options);
  const sim::Simulator simulator(array);
  const sim::CampaignOptions campaign = micro_campaign();
  long detected = 0;
  for (auto _ : state) {
    const auto result = sim::run_campaign(simulator, set.vectors, campaign);
    detected = result.total_detected();
    benchmark::DoNotOptimize(detected);
  }
  state.counters["detected"] = static_cast<double>(detected);
}
BENCHMARK(BM_CampaignBatch)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_CampaignParallel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::ValveArray array = grid::full_array(n, n);
  core::GeneratorOptions generator_options;
  generator_options.hierarchical = true;
  const auto set = core::generate_test_set(array, generator_options);
  const sim::ParallelCampaignRunner runner(array);
  const sim::CampaignOptions campaign = micro_campaign();
  long detected = 0;
  for (auto _ : state) {
    const auto result = runner.run(set.vectors, campaign);
    detected = result.total_detected();
    benchmark::DoNotOptimize(detected);
  }
  state.counters["detected"] = static_cast<double>(detected);
}
BENCHMARK(BM_CampaignParallel)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
