#!/usr/bin/env python3
"""Benchmark regression gate: compare fresh Google-Benchmark JSON against a
committed baseline and fail on counter regressions.

Wall-clock times are too noisy on shared CI runners to gate on, but the
solver counters (nodes, pivots, cuts, budget) are deterministic for a fixed
binary, so they make a reliable merge gate: a >25% increase in any named
counter of any benchmark present in both files fails the job. For jobs on
pinned hardware (the nightly slow-certify run), `--wallclock-threshold`
additionally gates real_time; it stays off everywhere else.

Usage:
  bench/compare_bench.py BASELINE.json FRESH.json \
      [--threshold 0.25] [--counters nodes,pivots,budget] [--abs-slack 8]

Audit mode:
  bench/compare_bench.py BASELINE.json --list-gated \
      [--counters ...] [--min-counters ...] [--exact-counters ...] \
      [--equal-counters ...]

`--list-gated` takes the same gate lists as a comparison run but inspects a
single JSON file: it prints which benchmarks carry each gated counter and
fails if a gated counter is emitted by NO benchmark in the file — the
"gate names a counter nobody records" rot that otherwise only surfaces as
a silently-passing gate.

Exit status: 0 = no regression, 1 = regression found, 2 = usage/IO error.
"""

import argparse
import json
import sys

DEFAULT_COUNTERS = ["nodes", "pivots", "budget"]


def load_benchmarks(path):
    """name -> {counter: value} for every benchmark entry in the JSON."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"compare_bench: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)
    benchmarks = {}
    for entry in data.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name")
        if name is None:
            print(f"compare_bench: {path} has a benchmark entry without a "
                  "'name' field; skipping it", file=sys.stderr)
            continue
        benchmarks[name] = entry
    return benchmarks


def list_gated(path, gate_lists):
    """Audit one benchmark JSON: report which benchmarks emit each gated
    counter, and fail when a gate list names a counter nothing emits."""
    benchmarks = load_benchmarks(path)
    if not benchmarks:
        print(f"compare_bench: {path} contains no benchmarks",
              file=sys.stderr)
        sys.exit(2)
    unrecorded = []
    for mode, counters in gate_lists:
        for counter in counters:
            carriers = sorted(name for name, entry in benchmarks.items()
                              if counter in entry)
            shown = ", ".join(carriers) if carriers else "NONE"
            print(f"{counter:<12} [{mode:<5}] {len(carriers):>3} "
                  f"benchmark(s): {shown}")
            if not carriers:
                unrecorded.append((counter, mode))
    if unrecorded:
        print(f"\ncompare_bench: {len(unrecorded)} gated counter(s) not "
              f"recorded by any benchmark in {path}:", file=sys.stderr)
        for counter, mode in unrecorded:
            print(f"  '{counter}' ({mode} gate) — the gate can never fire; "
                  "fix the gate list or re-emit the counter",
                  file=sys.stderr)
        sys.exit(2)
    total = sum(len(counters) for _, counters in gate_lists)
    print(f"\ncompare_bench: all {total} gated counter(s) are recorded in "
          f"{path} ({len(benchmarks)} benchmarks)")
    sys.exit(0)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh", nargs="?",
                        help="fresh run to gate (omitted with --list-gated)")
    parser.add_argument("--list-gated", action="store_true",
                        help="audit mode: check that every gated counter is "
                             "recorded somewhere in BASELINE.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative increase that counts as a regression")
    parser.add_argument("--counters", default=",".join(DEFAULT_COUNTERS),
                        help="comma-separated counters to gate on")
    parser.add_argument("--min-counters", default="",
                        help="counters that regress by DECREASING "
                             "(e.g. detected fault counts)")
    parser.add_argument("--exact-counters", default="",
                        help="answer-quality counters where ANY increase "
                             "fails, with no slack (e.g. budget)")
    parser.add_argument("--equal-counters", default="",
                        help="deterministic counters that must match the "
                             "baseline bit-exactly in BOTH directions (the "
                             "parallel determinism gate: 1-thread runs must "
                             "reproduce the serial counters)")
    parser.add_argument("--exclude", default="",
                        help="comma-separated substrings; benchmarks whose "
                             "name contains one are reported but not gated "
                             "(e.g. time-limited scaling probes whose "
                             "counters depend on runner speed)")
    parser.add_argument("--abs-slack", type=float, default=8.0,
                        help="absolute headroom before the relative gate "
                             "applies (ignores 1-node -> 2-node jitter)")
    parser.add_argument("--wallclock-threshold", type=float, default=None,
                        help="opt-in wall-clock gate: relative real_time "
                             "increase that fails the run. Off by default "
                             "(CI merge gates stay counter-only; the "
                             "nightly job, on pinned hardware, turns this "
                             "on)")
    args = parser.parse_args()

    counters = [c.strip() for c in args.counters.split(",") if c.strip()]
    min_counters = [c.strip() for c in args.min_counters.split(",")
                    if c.strip()]
    exact_counters = [c.strip() for c in args.exact_counters.split(",")
                      if c.strip()]
    equal_counters = [c.strip() for c in args.equal_counters.split(",")
                      if c.strip()]

    if args.list_gated:
        list_gated(args.baseline, [("max", counters), ("min", min_counters),
                                   ("exact", exact_counters),
                                   ("equal", equal_counters)])
    if args.fresh is None:
        print("compare_bench: FRESH.json is required unless --list-gated",
              file=sys.stderr)
        sys.exit(2)
    baseline = load_benchmarks(args.baseline)
    fresh = load_benchmarks(args.fresh)

    shared = sorted(set(baseline) & set(fresh))
    only_baseline = sorted(set(baseline) - set(fresh))
    only_fresh = sorted(set(fresh) - set(baseline))
    if not shared:
        print("compare_bench: no shared benchmarks between "
              f"{args.baseline} and {args.fresh}", file=sys.stderr)
        sys.exit(2)

    excludes = [e.strip() for e in args.exclude.split(",") if e.strip()]
    regressions = []
    missing = []
    rows = []
    for name in shared:
        excluded = any(e in name for e in excludes)
        for counter, mode in ([(c, "max") for c in counters] +
                              [(c, "min") for c in min_counters] +
                              [(c, "exact") for c in exact_counters] +
                              [(c, "equal") for c in equal_counters]):
            if counter not in baseline[name]:
                if counter in fresh[name]:
                    # The fresh run emits a gated counter the committed
                    # baseline never recorded: the gate silently passes on
                    # it until someone regenerates the baseline (the PR-4
                    # fix caught only the opposite direction — a counter
                    # dropped from the fresh run). Fail loudly instead —
                    # unless the benchmark is excluded from gating.
                    if excluded:
                        rows.append((name, counter, None,
                                     float(fresh[name][counter]), "n/a",
                                     "excluded"))
                    else:
                        missing.append((name, counter))
                        rows.append((name, counter, None,
                                     float(fresh[name][counter]), "n/a",
                                     "UNBASELINED"))
                # Otherwise the counter simply does not apply to this
                # benchmark (e.g. a gate list shared across bench
                # binaries); nothing to compare against.
                continue
            if counter not in fresh[name]:
                # The committed baseline gates this counter but the fresh
                # run no longer emits it — a silent skip here would quietly
                # disable the regression gate (seen after bench renames and
                # counter refactors), so report it and fail (unless the
                # benchmark is excluded from gating, same as above).
                if excluded:
                    rows.append((name, counter,
                                 float(baseline[name][counter]), None,
                                 "n/a", "excluded"))
                else:
                    missing.append((name, counter))
                    rows.append((name, counter,
                                 float(baseline[name][counter]), None,
                                 "n/a", "MISSING"))
                continue
            base = float(baseline[name][counter])
            new = float(fresh[name][counter])
            if mode == "min":
                regressed = new < base * (1.0 - args.threshold)
            elif mode == "equal":
                # Determinism gate: the counter must reproduce bit-exactly
                # (a decrease is as much a red flag as an increase — it
                # means the "deterministic" path took a different tree).
                regressed = new != base
            elif mode == "exact":
                # Answer quality (e.g. the proven-minimal budget): any
                # increase at all is a correctness regression.
                regressed = new > base
            else:
                limit = max(base * (1.0 + args.threshold),
                            base + args.abs_slack)
                regressed = new > limit
            status = "ok"
            if regressed and excluded:
                status = "excluded"
            elif regressed:
                status = "REGRESSION"
                regressions.append((name, counter, base, new))
            delta = "n/a" if base == 0 else f"{(new - base) / base:+.1%}"
            rows.append((name, counter, base, new, delta, status))

    # Opt-in wall-clock gate: counters stay the merge gate, but the nightly
    # job runs on pinned hardware where real_time is stable enough to catch
    # the "counters flat, constant factor doubled" class of regression.
    wallclock_regressions = []
    if args.wallclock_threshold is not None:
        for name in shared:
            entry_base = baseline[name]
            entry_fresh = fresh[name]
            if "real_time" not in entry_base or "real_time" not in entry_fresh:
                continue
            if entry_base.get("time_unit") != entry_fresh.get("time_unit"):
                print(f"note: {name} time_unit changed; wall-clock not gated")
                continue
            base = float(entry_base["real_time"])
            new = float(entry_fresh["real_time"])
            regressed = new > base * (1.0 + args.wallclock_threshold)
            excluded = any(e in name for e in excludes)
            status = "ok"
            if regressed and excluded:
                status = "excluded"
            elif regressed:
                status = "WALLCLOCK"
                wallclock_regressions.append((name, base, new))
            delta = "n/a" if base == 0 else f"{(new - base) / base:+.1%}"
            rows.append((name, "realtime", base, new, delta, status))

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'benchmark':<{width}}  {'counter':<8} {'base':>12} "
          f"{'fresh':>12} {'delta':>8}  status")
    for name, counter, base, new, delta, status in rows:
        base_cell = "---" if base is None else f"{base:.0f}"
        fresh_cell = "---" if new is None else f"{new:.0f}"
        print(f"{name:<{width}}  {counter:<8} {base_cell:>12} "
              f"{fresh_cell:>12} {delta:>8}  {status}")
    for name in only_baseline:
        print(f"note: {name} only in baseline (removed benchmark?)")
    for name in only_fresh:
        print(f"note: {name} only in fresh run (new benchmark)")

    # Print every diagnostic before exiting, so one CI run surfaces both a
    # dropped counter and an unrelated regression instead of two round
    # trips.
    if missing:
        print(f"\ncompare_bench: {len(missing)} gated counter(s) present on "
              "only one side:", file=sys.stderr)
        for name, counter in missing:
            if counter in baseline.get(name, {}):
                print(f"  {name}: counter '{counter}' missing from the "
                      "fresh run (renamed bench or dropped counter? update "
                      "the committed baseline or the gate list)",
                      file=sys.stderr)
            else:
                print(f"  {name}: counter '{counter}' missing from the "
                      "committed baseline (new counter added to the gate? "
                      "regenerate and commit the baseline JSON)",
                      file=sys.stderr)
    if regressions:
        print(f"\ncompare_bench: {len(regressions)} counter regression(s) "
              f"beyond {args.threshold:.0%}:", file=sys.stderr)
        for name, counter, base, new in regressions:
            print(f"  {name} {counter}: {base:.0f} -> {new:.0f}",
                  file=sys.stderr)
    if wallclock_regressions:
        print(f"\ncompare_bench: {len(wallclock_regressions)} wall-clock "
              f"regression(s) beyond {args.wallclock_threshold:.0%}:",
              file=sys.stderr)
        for name, base, new in wallclock_regressions:
            print(f"  {name} real_time: {base:.0f} -> {new:.0f}",
                  file=sys.stderr)
    if missing:
        sys.exit(2)
    if regressions or wallclock_regressions:
        sys.exit(1)
    print(f"\ncompare_bench: no regressions across {len(shared)} shared "
          f"benchmarks ({', '.join(counters)})")
    sys.exit(0)


if __name__ == "__main__":
    main()
