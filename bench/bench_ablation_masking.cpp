// E6 -- the two-fault guarantee (Fig. 5(c)/(d), constraint (9)): exhaustive
// audit of all stuck-fault pairs, with the masking exclusion (chordless
// cuts + behavioral repair) switched on and off.
//
// Expected shape: with the exclusion and repair enabled every pair is
// detected (the paper's "guarantee the detection of up to two faults");
// without them a weaker vector set can let pairs escape.
#include <iostream>

#include "common/strings.h"
#include "common/table.h"
#include "core/generator.h"
#include "core/masking.h"
#include "grid/builder.h"
#include "grid/presets.h"

int main() {
  using namespace fpva;

  struct Case {
    std::string name;
    grid::ValveArray array;
  };
  std::vector<Case> cases;
  cases.push_back({"full 5x5", grid::full_array(5, 5)});
  cases.push_back({"Table-I 5x5", grid::table1_array(5)});
  cases.push_back({"full 6x6", grid::full_array(6, 6)});
  // A constricted layout (obstacle wall with a one-valve gap) that creates
  // the masking geometry of Fig. 5(c)/(d).
  cases.push_back({"constricted 6x6",
                   grid::LayoutBuilder(6, 6)
                       .obstacle_rect(grid::Cell{2, 0}, grid::Cell{2, 3})
                       .obstacle_rect(grid::Cell{2, 5}, grid::Cell{2, 5})
                       .default_ports()
                       .build()});

  std::cout << "Two-fault masking ablation -- exhaustive stuck-fault pair "
               "audit\n\n";
  common::Table table({"Array", "pairs", "escapes (excl. off)",
                       "escapes (excl. on)", "after repair", "extra vecs"});

  for (const Case& test_case : cases) {
    const grid::ValveArray& array = test_case.array;
    const sim::Simulator simulator(array);

    // Masking exclusion OFF: no chordless enforcement, no repair loop.
    core::GeneratorOptions off;
    off.two_fault_exclusion = false;
    off.repair = false;
    off.generate_leak_vectors = false;
    auto off_set = core::generate_test_set(array, off);
    const auto off_universe = [&] {
      std::vector<sim::Fault> u;
      for (grid::ValveId v = 0; v < array.valve_count(); ++v) {
        u.push_back(sim::stuck_at_0(v));
        u.push_back(sim::stuck_at_1(v));
      }
      return u;
    }();
    const auto off_report = sim::two_fault_coverage(
        simulator, off_set.vectors, off_universe, 10);

    // Masking exclusion ON, plus the behavioral two-fault repair loop.
    core::GeneratorOptions on;
    on.two_fault_exclusion = true;
    auto on_set = core::generate_test_set(array, on);
    const auto on_report = sim::two_fault_coverage(
        simulator, on_set.vectors, off_universe, 10);
    const auto audit = core::audit_and_repair_two_faults(
        array, simulator, on_set.vectors);

    table.add_row(
        {test_case.name, common::cat(off_report.total_pairs),
         common::cat(off_report.total_pairs - off_report.detected_pairs),
         common::cat(on_report.total_pairs - on_report.detected_pairs),
         common::cat(audit.after.total_pairs - audit.after.detected_pairs),
         common::cat(audit.added_vectors)});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "'after repair' = 0 reproduces the paper's claim that any "
               "two simultaneous faults are detected.\n";
  return 0;
}
