// E5 -- reproduces the Section IV baseline comparison: the naive method
// that targets one valve per vector needs ~2*n_v vectors; the proposed
// method needs ~2*sqrt(n_v) -- "a squared complexity compared with the
// proposed method".
#include <cmath>
#include <iostream>

#include "common/strings.h"
#include "common/table.h"
#include "core/baseline.h"
#include "core/generator.h"
#include "grid/presets.h"
#include "sim/coverage.h"
#include "sim/simulator.h"

int main() {
  using namespace fpva;

  std::cout << "Baseline comparison -- proposed (hierarchical) vs "
               "one-valve-at-a-time\n\n";
  common::Table table({"Array", "n_v", "proposed N", "2*sqrt(n_v)",
                       "baseline N", "ratio", "baseline covers"});

  for (const int n : grid::table1_sizes()) {
    const grid::ValveArray array = grid::table1_array(n);
    core::GeneratorOptions options;
    options.hierarchical = true;
    const auto proposed = core::generate_test_set(array, options);
    const auto baseline = core::generate_baseline(array);

    // Verify the baseline actually achieves stuck-fault coverage (it is a
    // real method here, not just a vector count).
    const sim::Simulator simulator(array);
    const auto universe = sim::single_stuck_fault_universe(array);
    const auto report =
        sim::single_fault_coverage(simulator, baseline.vectors, universe);

    const double ratio =
        static_cast<double>(baseline.vectors.size()) /
        static_cast<double>(proposed.total_vectors());
    table.add_row(
        {common::cat(n, " x ", n), common::cat(array.valve_count()),
         common::cat(proposed.total_vectors()),
         common::to_fixed(2.0 * std::sqrt(array.valve_count()), 1),
         common::cat(baseline.vectors.size()),
         common::cat(common::to_fixed(ratio, 1), "x"),
         common::cat(common::to_fixed(100.0 * report.coverage(), 1), "%")});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "The ratio grows with array size: the baseline is "
               "O(n_v), the proposed method O(sqrt(n_v)) vectors.\n";
  return 0;
}
