// E2 -- reproduces Fig. 8: flow paths on a full 10x10 array, direct model
// vs hierarchical model (5x5 subblocks).
//
// Paper: 2 paths direct, 4 paths hierarchical. Expected shape here: the
// constructive engine needs 2-4 paths direct and at least as many
// hierarchical -- the hierarchy trades path count for scalability.
#include <iostream>

#include "core/generator.h"
#include "core/report.h"
#include "grid/presets.h"

int main() {
  using namespace fpva;
  const grid::ValveArray array = grid::full_array(10, 10);

  core::GeneratorOptions direct;
  direct.generate_cut_vectors = false;
  direct.generate_leak_vectors = false;
  const auto direct_set = core::generate_test_set(array, direct);

  core::GeneratorOptions hier = direct;
  hier.hierarchical = true;
  hier.block_size = 5;
  const auto hier_set = core::generate_test_set(array, hier);

  std::cout << "Fig. 8 -- flow paths on a full 10x10 FPVA\n\n";
  std::cout << "(a) direct model: " << direct_set.paths.size()
            << " flow paths (paper: 2)\n";
  std::cout << core::render_paths(array, direct_set.paths) << "\n";
  std::cout << "(b) hierarchical model, 5x5 subblocks: "
            << hier_set.paths.size() << " flow paths (paper: 4)\n";
  std::cout << core::render_paths(array, hier_set.paths) << "\n";
  std::cout << "direct <= hierarchical path count: "
            << (direct_set.paths.size() <= hier_set.paths.size() ? "yes"
                                                                 : "no")
            << "\n";
  return 0;
}
