// E7 -- hierarchy ablation (Section III-B-4): subblock size vs path count
// and runtime. The paper's point: the hierarchy makes generation scale at
// the cost of more paths (Fig. 8: 2 paths direct vs 4 hierarchical).
#include <iostream>

#include "common/strings.h"
#include "common/table.h"
#include "core/generator.h"
#include "grid/presets.h"

int main() {
  using namespace fpva;

  std::cout << "Hierarchy ablation -- band (subblock) size sweep\n\n";
  common::Table table({"Array", "mode", "n_p", "t_p(s)", "N", "undetected"});

  for (const int n : {10, 15, 20}) {
    const grid::ValveArray array = grid::table1_array(n);
    for (const int block : {0, 2, 3, 5, 10}) {
      core::GeneratorOptions options;
      options.generate_leak_vectors = false;
      if (block == 0) {
        options.hierarchical = false;
      } else {
        options.hierarchical = true;
        options.block_size = block;
      }
      const auto set = core::generate_test_set(array, options);
      table.add_row({common::cat(n, " x ", n),
                     block == 0 ? "direct" : common::cat("blocks of ", block),
                     common::cat(set.path_stage.vectors),
                     common::to_fixed(set.path_stage.seconds, 3),
                     common::cat(set.total_vectors()),
                     common::cat(set.undetected.size())});
    }
  }
  std::cout << table.to_string() << "\n";
  std::cout << "Smaller blocks -> more, shorter paths (the paper's "
               "hierarchy/compactness trade-off); coverage never drops.\n";
  return 0;
}
