// Certification-frontier probe: attempts the cut-set minimum of an n x n
// full array to *proven* optimality and reports every III-B-3 budget
// escalation stage (status, nodes, pivots, conflict-learning counters,
// wall time), so the frontier is tracked by CI instead of hand-measured.
// The 6x6 (the nightly default) certifies min = 4 in about a minute with
// conflict learning + backjumping; the open frontier is 7x7 and up —
// point the size argument there.
//
// Usage:  bench_certify [n] [per-stage-seconds] [out.json] [threads]
//   n                  array size (default 6)
//   per-stage-seconds  ilp time limit per escalation stage (default 600)
//   out.json           solver-stats artifact (default certify_stats.json)
//   threads            workers for BOTH parallel layers — budget stages
//                      run concurrently and each stage's tree search is
//                      work-stealing parallel (default 1 = serial,
//                      bit-identical counters; 0 = hardware concurrency)
//
// Exit status: 0 when the run completed (certified or not — the nightly
// job tracks, it does not gate), 2 on bad arguments or an infeasible
// model. The JSON artifact records `proven_minimal` for the dashboard.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/parallel.h"
#include "core/ilp_models.h"
#include "grid/presets.h"

namespace {

const char* status_name(fpva::ilp::ResultStatus status) {
  switch (status) {
    case fpva::ilp::ResultStatus::kOptimal: return "optimal";
    case fpva::ilp::ResultStatus::kFeasible: return "feasible";
    case fpva::ilp::ResultStatus::kInfeasible: return "infeasible";
    case fpva::ilp::ResultStatus::kUnknown: return "unknown";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpva;
  int n = 6;
  double stage_seconds = 600.0;
  std::string out_path = "certify_stats.json";
  int threads = 1;
  if (argc > 1) n = std::atoi(argv[1]);
  if (argc > 2) stage_seconds = std::atof(argv[2]);
  if (argc > 3) out_path = argv[3];
  if (argc > 4) threads = std::atoi(argv[4]);
  if (n < 2 || n > 12 || stage_seconds <= 0.0 || threads < 0) {
    std::fprintf(stderr,
                 "usage: bench_certify [n=6] [per-stage-seconds=600] "
                 "[out.json] [threads=1]\n");
    return 2;
  }

  const grid::ValveArray array = grid::full_array(n, n);
  ilp::Options options;
  options.time_limit_seconds = stage_seconds;
  // Backjumping is off in the default config (it derails the structured
  // dives of already-fast instances) but it is the decisive lever on the
  // stalled frontier stages this probe exists for: with it, the 6x6
  // budget-4 stage proves its optimum in under a minute.
  options.conflict_backjumping = true;
  options.threads = threads;
  options.escalation_threads = threads;
  const int resolved = common::resolve_thread_count(threads);
  std::printf("bench_certify: %dx%d cut-set minimum, %.0f s per stage, "
              "conflict learning %s + backjumping, %d thread%s\n",
              n, n, stage_seconds,
              options.conflict_learning ? "on" : "off", resolved,
              resolved == 1 ? "" : "s");

  const auto result = core::find_minimum_cut_sets(array, 1, 10, true,
                                                  options);
  if (!result.has_value()) {
    std::fprintf(stderr, "bench_certify: no cut cover found (limits or "
                         "infeasible model)\n");
    return 2;
  }

  std::printf("\n%-8s %-11s %10s %12s %10s %10s %10s %9s\n", "budget",
              "status", "nodes", "pivots", "conflicts", "learned",
              "backjumps", "seconds");
  for (const core::BudgetStage& stage : result->stages) {
    std::printf("%-8d %-11s %10ld %12ld %10ld %10ld %10ld %9.1f\n",
                stage.budget, status_name(stage.status), stage.nodes,
                stage.lp_pivots, stage.conflicts, stage.nogoods_learned,
                stage.backjumps, stage.seconds);
  }
  std::printf("\nminimum cut sets: %d (%s)\n", result->cut_budget,
              result->proven_minimal ? "PROVEN minimal"
                                     : "no optimality certificate");

  std::ofstream out(out_path);
  if (out.good()) {
    out << "{\n  \"array\": " << n << ",\n  \"stage_limit_seconds\": "
        << stage_seconds << ",\n  \"threads\": " << resolved
        << ",\n  \"cut_budget\": " << result->cut_budget
        << ",\n  \"proven_minimal\": "
        << (result->proven_minimal ? "true" : "false") << ",\n  \"stages\": [";
    for (std::size_t i = 0; i < result->stages.size(); ++i) {
      const core::BudgetStage& stage = result->stages[i];
      out << (i == 0 ? "" : ",") << "\n    {\"budget\": " << stage.budget
          << ", \"status\": \"" << status_name(stage.status)
          << "\", \"nodes\": " << stage.nodes
          << ", \"pivots\": " << stage.lp_pivots
          << ", \"conflicts\": " << stage.conflicts
          << ", \"learned\": " << stage.nogoods_learned
          << ", \"backjumps\": " << stage.backjumps
          << ", \"seconds\": " << stage.seconds << "}";
    }
    out << "\n  ]\n}\n";
    std::printf("stats written to %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "bench_certify: cannot write %s\n",
                 out_path.c_str());
  }
  return 0;
}
