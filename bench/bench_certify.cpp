// Certification-frontier probe: attempts the cut-set minimum of an n x n
// full array to *proven* optimality and reports every III-B-3 budget
// escalation stage (status, nodes, pivots, conflict-learning counters,
// wall time), so the frontier is tracked by CI instead of hand-measured.
// The 6x6 certifies min = 4 in about a minute with conflict learning +
// backjumping + LP-refutation nogoods; the open frontier — and the nightly
// default — is 7x7 and up.
//
// Usage:  bench_certify [n] [per-stage-seconds] [out.json] [threads]
//                       [store-dir] [deadline-seconds]
//   n                  array size (default 6)
//   per-stage-seconds  ilp time limit per escalation stage (default 600)
//   out.json           solver-stats artifact (default certify_stats.json)
//   threads            workers for BOTH parallel layers — budget stages
//                      run concurrently and each stage's tree search is
//                      work-stealing parallel (default 1 = serial,
//                      bit-identical counters; 0 = hardware concurrency)
//   store-dir          certificate-store directory; "-" (default) disables
//                      persistence. With a store, a rerun resumes: stored
//                      refutations replay, stored witnesses re-verify, and
//                      a killed or deadline-truncated run picks up where
//                      it checkpointed.
//   deadline-seconds   whole-campaign wall-clock deadline (default: none).
//                      On expiry the current stage checkpoints its anytime
//                      certificate to the store and the process exits 3.
//
// In FPVA_FAILPOINTS builds the probe arms fault injection from
// FPVA_FAILPOINT_SEED / FPVA_FAILPOINT_SPEC before running — the nightly
// kill/resume loop SIGKILLs it mid-stage this way (see
// tests/failpoint_seeds.txt).
//
// Exit status:
//   0  campaign completed with a PROVEN minimal certificate
//   2  bad arguments, or no cut cover found (infeasible model / no result)
//   3  campaign ran but the certificate is incomplete: abandoned stages,
//      an unproven cover, or a deadline checkpoint (resume by rerunning
//      with the same store-dir)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "common/deadline.h"
#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/stop.h"
#include "core/cert_store.h"
#include "core/ilp_models.h"
#include "grid/presets.h"

namespace {

const char* status_name(fpva::ilp::ResultStatus status) {
  switch (status) {
    case fpva::ilp::ResultStatus::kOptimal: return "optimal";
    case fpva::ilp::ResultStatus::kFeasible: return "feasible";
    case fpva::ilp::ResultStatus::kInfeasible: return "infeasible";
    case fpva::ilp::ResultStatus::kUnknown: return "unknown";
  }
  return "?";
}

[[noreturn]] void usage_error() {
  std::fprintf(stderr,
               "usage: bench_certify [n=6] [per-stage-seconds=600] "
               "[out.json] [threads=1] [store-dir=-] "
               "[deadline-seconds=none]\n"
               "  2 <= n <= 12; per-stage-seconds > 0; threads >= 0;\n"
               "  deadline-seconds > 0 when given; store-dir \"-\" "
               "disables the certificate store\n");
  std::exit(2);
}

/// Strict numeric parsing: atoi-style silent zeroes on garbage have bitten
/// this probe before (a mistyped flag order quietly became "0 threads").
long parse_long(const char* text) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') usage_error();
  return value;
}

double parse_double(const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') usage_error();
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpva;
  int n = 6;
  double stage_seconds = 600.0;
  std::string out_path = "certify_stats.json";
  int threads = 1;
  std::string store_dir = "-";
  double deadline_seconds = 0.0;  // 0 = none
  if (argc > 7) usage_error();
  if (argc > 1) n = static_cast<int>(parse_long(argv[1]));
  if (argc > 2) stage_seconds = parse_double(argv[2]);
  if (argc > 3) out_path = argv[3];
  if (argc > 4) threads = static_cast<int>(parse_long(argv[4]));
  if (argc > 5) store_dir = argv[5];
  if (argc > 6) deadline_seconds = parse_double(argv[6]);
  if (n < 2 || n > 12 || stage_seconds <= 0.0 || threads < 0 ||
      out_path.empty() || store_dir.empty() ||
      (argc > 6 && deadline_seconds <= 0.0)) {
    usage_error();
  }

  // Deterministic fault injection for the kill/resume CI loop; a no-op
  // without FPVA_FAILPOINTS or when the env vars are unset.
  common::failpoint::arm_from_env();

  const grid::ValveArray array = grid::full_array(n, n);
  ilp::Options options;
  options.time_limit_seconds = stage_seconds;
  // Backjumping is off in the default config (it derails the structured
  // dives of already-fast instances) but it is the decisive lever on the
  // stalled frontier stages this probe exists for: with it, the 6x6
  // budget-4 stage proves its optimum in under a minute.
  options.conflict_backjumping = true;
  // LP-driven learning + Luby restarts: every LP refutation (infeasible
  // node LP or bound prune) becomes a nogood, and the search restarts on
  // the Luby schedule keeping the pool and branching activities. This is
  // what moves the refutation stages — they end in an LP "no", which
  // previously taught the search nothing.
  options.lp_conflict_learning = true;
  options.restart_interval = 256;
  options.threads = threads;
  options.escalation_threads = threads;
  if (deadline_seconds > 0.0) {
    options.stop = common::StopToken{}.with_deadline(
        common::Deadline::after(deadline_seconds));
  }
  std::unique_ptr<core::CertStore> store;
  if (store_dir != "-") {
    store = std::make_unique<core::CertStore>(store_dir);
    if (!store->enabled()) {
      std::fprintf(stderr, "bench_certify: store dir %s unusable; running "
                           "without persistence\n",
                   store_dir.c_str());
    }
  }
  const int resolved = common::resolve_thread_count(threads);
  std::printf("bench_certify: %dx%d cut-set minimum, %.0f s per stage, "
              "conflict learning %s + backjumping + LP nogoods + Luby "
              "restarts, %d thread%s%s%s\n",
              n, n, stage_seconds,
              options.conflict_learning ? "on" : "off", resolved,
              resolved == 1 ? "" : "s",
              store ? ", store " : "",
              store ? store_dir.c_str() : "");

  const auto result = core::find_minimum_cut_sets(array, 1, 10, true,
                                                  options, store.get());
  if (!result.has_value()) {
    if (options.stop.stop_requested()) {
      std::fprintf(stderr, "bench_certify: deadline expired; progress "
                           "checkpointed%s — rerun with the same store to "
                           "resume\n",
                   store ? "" : " NOWHERE (no store-dir given)");
      return 3;
    }
    std::fprintf(stderr, "bench_certify: no cut cover found (limits or "
                         "infeasible model)\n");
    return 2;
  }

  std::printf("\n%-8s %-11s %10s %12s %10s %10s %10s %9s %8s %9s\n",
              "budget", "status", "nodes", "pivots", "conflicts", "learned",
              "backjumps", "lpnogoods", "restarts", "seconds");
  for (const core::BudgetStage& stage : result->stages) {
    std::printf("%-8d %-11s %10ld %12ld %10ld %10ld %10ld %9ld %8ld %9.1f\n",
                stage.budget, status_name(stage.status), stage.nodes,
                stage.lp_pivots, stage.conflicts, stage.nogoods_learned,
                stage.backjumps, stage.lp_nogoods, stage.restarts,
                stage.seconds);
  }
  std::printf("\nminimum cut sets: %d (%s)\n", result->cut_budget,
              result->proven_minimal ? "PROVEN minimal"
                                     : "no optimality certificate");

  std::ofstream out(out_path);
  if (out.good()) {
    out << "{\n  \"array\": " << n << ",\n  \"stage_limit_seconds\": "
        << stage_seconds << ",\n  \"threads\": " << resolved
        << ",\n  \"cut_budget\": " << result->cut_budget
        << ",\n  \"proven_minimal\": "
        << (result->proven_minimal ? "true" : "false") << ",\n  \"stages\": [";
    for (std::size_t i = 0; i < result->stages.size(); ++i) {
      const core::BudgetStage& stage = result->stages[i];
      out << (i == 0 ? "" : ",") << "\n    {\"budget\": " << stage.budget
          << ", \"status\": \"" << status_name(stage.status)
          << "\", \"nodes\": " << stage.nodes
          << ", \"pivots\": " << stage.lp_pivots
          << ", \"conflicts\": " << stage.conflicts
          << ", \"learned\": " << stage.nogoods_learned
          << ", \"backjumps\": " << stage.backjumps
          << ", \"lpnogoods\": " << stage.lp_nogoods
          << ", \"restarts\": " << stage.restarts
          << ", \"seconds\": " << stage.seconds << "}";
    }
    out << "\n  ]\n}\n";
    std::printf("stats written to %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "bench_certify: cannot write %s\n",
                 out_path.c_str());
  }
  // The nightly gate: anything short of a proven minimum is a nonzero
  // exit so the kill/resume loop and the dashboard can both trust the
  // status code alone. (A proven-optimal final stage subsumes earlier
  // abandoned stages — see the certificate argument in core/ilp_models —
  // so proven_minimal is the complete criterion.)
  return result->proven_minimal ? 0 : 3;
}
