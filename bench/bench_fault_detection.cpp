// E4 -- reproduces the Section IV fault-injection study: "for each valve
// array in Table I we randomly introduced one, two, three, four and five
// faults, respectively, and applied the generated test vectors. We repeated
// this process 10,000 times. In these test cases, the test vectors captured
// all the faults."
//
// Expected result: 100% detection for every array and every fault count.
#include <iostream>

#include "common/strings.h"
#include "common/table.h"
#include "core/generator.h"
#include "grid/presets.h"
#include "sim/campaign.h"

int main() {
  using namespace fpva;

  std::cout << "Section IV fault-injection study -- 10,000 random trials "
               "per (array, fault count)\n\n";
  common::Table table({"Array", "N vectors", "k=1", "k=2", "k=3", "k=4",
                       "k=5", "missed"});

  long total_missed = 0;
  for (const int n : grid::table1_sizes()) {
    const grid::ValveArray array = grid::table1_array(n);
    core::GeneratorOptions options;
    options.hierarchical = true;
    const auto set = core::generate_test_set(array, options);

    const sim::Simulator simulator(array);
    sim::CampaignOptions campaign;
    campaign.trials_per_count = 10000;
    campaign.min_faults = 1;
    campaign.max_faults = 5;
    const auto result = sim::run_campaign(simulator, set.vectors, campaign);

    std::vector<std::string> row{common::cat(n, " x ", n),
                                 common::cat(set.total_vectors())};
    for (const auto& per_count : result.rows) {
      row.push_back(common::cat(
          common::to_fixed(100.0 * per_count.detection_rate(), 2), "%"));
    }
    const long missed = result.total_trials() - result.total_detected();
    row.push_back(common::cat(missed));
    total_missed += missed;
    table.add_row(std::move(row));
  }
  std::cout << table.to_string() << "\n";
  std::cout << (total_missed == 0
                    ? "All faults detected in all trials (matches the "
                      "paper's finding).\n"
                    : common::cat(total_missed,
                                  " trials escaped detection.\n"));
  return 0;
}
