// E1 -- reproduces Table I: test-vector counts and generation runtimes for
// the five benchmark arrays (5x5 .. 30x30, with channels and obstacles),
// using the hierarchical strategy with 5x5 subblocks.
//
// Expected shape vs the paper: identical n_v per row; n_c dominated by the
// 2n-2 staircase family; total N on the order of 2*sqrt(n_v); runtimes much
// smaller in absolute terms because the constructive engine replaces the
// commercial ILP solver (the algorithmic flow is the paper's).
#include <iostream>

#include "common/strings.h"
#include "common/table.h"
#include "core/generator.h"
#include "grid/presets.h"

int main() {
  using namespace fpva;

  std::cout << "Table I -- results of test vector generation\n"
            << "(paper columns; 'paper N' from DATE'17 for comparison)\n\n";

  common::Table table({"Dimension", "n_v", "Top", "Subblock", "n_p",
                       "t_p(s)", "n_c", "t_c(s)", "n_l", "t_l(s)", "N",
                       "T(s)", "paper N"});
  const int paper_total[] = {17, 26, 44, 70, 98};

  int row = 0;
  for (const int n : grid::table1_sizes()) {
    const grid::ValveArray array = grid::table1_array(n);
    core::GeneratorOptions options;
    options.hierarchical = true;
    options.block_size = 5;
    const core::GeneratedTestSet set = core::generate_test_set(array,
                                                               options);
    const int blocks = (n + 4) / 5;
    table.add_row({common::cat(n, " x ", n),
                   common::cat(array.valve_count()),
                   common::cat(blocks, " x ", blocks), "5 x 5",
                   common::cat(set.path_stage.vectors),
                   common::to_fixed(set.path_stage.seconds, 2),
                   common::cat(set.cut_stage.vectors),
                   common::to_fixed(set.cut_stage.seconds, 2),
                   common::cat(set.leak_stage.vectors),
                   common::to_fixed(set.leak_stage.seconds, 2),
                   common::cat(set.total_vectors()),
                   common::to_fixed(set.total_seconds(), 2),
                   common::cat(paper_total[row])});
    if (!set.undetected.empty()) {
      std::cout << "WARNING: " << set.undetected.size()
                << " undetected faults on " << n << "x" << n << "\n";
    }
    ++row;
  }
  std::cout << table.to_string() << "\n";
  std::cout << "Both columns follow N ~= 2*sqrt(n_v): the proposed method "
               "needs O(sqrt(n_v)) vectors where the naive baseline needs "
               "2*n_v (see bench_baseline).\n";
  return 0;
}
