// Adaptive-diagnosis benchmark: static test ordering versus expected
// information gain on the Table-I presets, recorded as BENCH_diagnosis.json
// by bench/run_benchmarks.sh.
//
// The counters are deterministic for a fixed binary (counter-free greedy
// over a bit-exact outcome table), so CI gates on them rather than on
// wall-clock: `tests` is the summed tests-to-isolate over every single
// stuck-fault truth — the quantity adaptive selection exists to shrink —
// and `isolated` counts truths the session pinned to one hypothesis, which
// must never drop. `ddhits`/`ddnodes` expose the decision-diagram cache
// economy across the truth sweep.
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "core/generator.h"
#include "grid/presets.h"
#include "sim/coverage.h"
#include "sim/diagnosis/adaptive.h"

namespace {

using namespace fpva;

std::vector<sim::FaultScenario> stuck_universe(
    const grid::ValveArray& array) {
  std::vector<sim::FaultScenario> universe;
  for (const sim::Fault& fault : sim::single_stuck_fault_universe(array)) {
    universe.push_back({fault});
  }
  return universe;
}

struct SweepTotals {
  long tests = 0;
  long eliminated = 0;
  long isolated = 0;
  long ddhits = 0;
  long ddnodes = 0;
};

/// One full diagnosis sweep: a fresh diagnoser sessions every single-fault
/// truth in universe order (fresh so the DD-cache economy is identical on
/// every iteration).
SweepTotals sweep(const grid::ValveArray& array,
                  const std::vector<sim::TestVector>& vectors,
                  const sim::diagnosis::Options& options) {
  sim::diagnosis::AdaptiveDiagnoser diagnoser(array, vectors,
                                              stuck_universe(array), options);
  SweepTotals totals;
  for (const sim::FaultScenario& truth : diagnoser.universe()) {
    const auto session = diagnoser.run(truth);
    totals.tests += session.tests_applied();
    totals.eliminated += session.eliminated;
    totals.isolated += session.isolated() ? 1 : 0;
    totals.ddhits += session.cache_hits;
  }
  totals.ddnodes = diagnoser.cache_nodes();
  return totals;
}

void run_sweep_bench(benchmark::State& state,
                     const sim::diagnosis::Options& options) {
  const int n = static_cast<int>(state.range(0));
  const grid::ValveArray array = grid::table1_array(n);
  const auto set = core::generate_test_set(array);
  SweepTotals totals;
  for (auto _ : state) {
    totals = sweep(array, set.vectors, options);
    benchmark::DoNotOptimize(totals.tests);
  }
  state.counters["tests"] = static_cast<double>(totals.tests);
  state.counters["eliminated"] = static_cast<double>(totals.eliminated);
  state.counters["isolated"] = static_cast<double>(totals.isolated);
  state.counters["ddhits"] = static_cast<double>(totals.ddhits);
  state.counters["ddnodes"] = static_cast<double>(totals.ddnodes);
}

void BM_DiagnosisStaticOrder(benchmark::State& state) {
  sim::diagnosis::Options options;
  options.policy = sim::diagnosis::Policy::kStaticOrder;
  options.use_dd_cache = false;
  run_sweep_bench(state, options);
}
BENCHMARK(BM_DiagnosisStaticOrder)
    ->Arg(5)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_DiagnosisInfoGain(benchmark::State& state) {
  sim::diagnosis::Options options;
  options.policy = sim::diagnosis::Policy::kInfoGain;
  run_sweep_bench(state, options);
}
BENCHMARK(BM_DiagnosisInfoGain)
    ->Arg(5)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
