// E7 -- scalar vs. bit-parallel vs. multi-threaded campaign evaluation.
//
// The Section IV study costs ~50k scenario evaluations per array; this
// benchmark times the same campaign through the three engines and verifies
// that every one reports bit-identical detection results (the batched paths
// are exact reimplementations, not approximations). Acceptance floor: the
// batched engine is >= 10x the scalar oracle on the 16x16 array.
#include <iostream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/generator.h"
#include "grid/presets.h"
#include "sim/campaign.h"

namespace {

fpva::grid::ValveArray array_for(int n) {
  // Table I layouts where the paper defines one; a plain full array for the
  // acceptance-criterion 16x16 size.
  switch (n) {
    case 5:
    case 10:
    case 15:
    case 20:
    case 30: return fpva::grid::table1_array(n);
    default: return fpva::grid::full_array(n, n);
  }
}

int trials_for(int n) {
  // The paper's 10,000 where a single core finishes in seconds; fewer on
  // the large arrays so the scalar oracle stays measurable in CI.
  if (n <= 10) return 10000;
  if (n <= 16) return 2000;
  return 500;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpva;

  // Default sweep covers Table I plus the 16x16 acceptance size; any args
  // restrict the sizes (e.g. "bench_batch_sim 16" runs only 16x16).
  std::vector<int> sizes;
  for (int i = 1; i < argc; ++i) {
    try {
      sizes.push_back(std::stoi(argv[i]));
    } catch (const std::exception&) {
      std::cerr << "usage: bench_batch_sim [size...]   (sizes are positive "
                   "array dimensions, e.g. 5 16)\n";
      return 2;
    }
    if (sizes.back() < 1) {
      std::cerr << "bench_batch_sim: size must be >= 1, got " << argv[i]
                << "\n";
      return 2;
    }
  }
  if (sizes.empty()) sizes = {5, 10, 15, 16, 20};

  std::cout << "Campaign engines: scalar oracle vs. bit-parallel batch vs. "
               "threaded batch\n\n";
  common::Table table({"Array", "n_v", "N", "trials/k", "scalar(s)",
                       "batch(s)", "par(s)", "speedup", "par speedup",
                       "identical"});

  bool all_identical = true;
  double speedup_16 = 0.0;
  for (const int n : sizes) {
    const grid::ValveArray array = array_for(n);
    core::GeneratorOptions generator_options;
    generator_options.hierarchical = true;
    const auto set = core::generate_test_set(array, generator_options);
    const sim::Simulator simulator(array);

    sim::CampaignOptions campaign;
    campaign.trials_per_count = trials_for(n);
    campaign.min_faults = 1;
    campaign.max_faults = 5;

    common::Timer timer;
    const auto scalar =
        sim::run_campaign_scalar(simulator, set.vectors, campaign);
    const double scalar_s = timer.seconds();

    timer.reset();
    const auto batched = sim::run_campaign(simulator, set.vectors, campaign);
    const double batch_s = timer.seconds();

    const sim::ParallelCampaignRunner runner(array);
    timer.reset();
    const auto parallel = runner.run(set.vectors, campaign);
    const double par_s = timer.seconds();

    bool identical = scalar.rows.size() == batched.rows.size() &&
                     scalar.rows.size() == parallel.rows.size();
    for (std::size_t i = 0; identical && i < scalar.rows.size(); ++i) {
      identical = scalar.rows[i].detected == batched.rows[i].detected &&
                  scalar.rows[i].detected == parallel.rows[i].detected &&
                  scalar.rows[i].undetected_samples ==
                      batched.rows[i].undetected_samples &&
                  scalar.rows[i].undetected_samples ==
                      parallel.rows[i].undetected_samples;
    }
    all_identical = all_identical && identical;
    const double speedup = scalar_s / batch_s;
    if (n == 16) speedup_16 = speedup;

    table.add_row({common::cat(n, " x ", n),
                   common::cat(array.valve_count()),
                   common::cat(set.total_vectors()),
                   common::cat(campaign.trials_per_count),
                   common::to_fixed(scalar_s, 3),
                   common::to_fixed(batch_s, 3),
                   common::to_fixed(par_s, 3),
                   common::cat(common::to_fixed(speedup, 1), "x"),
                   common::cat(common::to_fixed(scalar_s / par_s, 1), "x"),
                   identical ? "yes" : "NO"});
  }
  std::cout << table.to_string() << "\n";

  if (!all_identical) {
    std::cout << "FAIL: engines disagree on detection results.\n";
    return 1;
  }
  std::cout << "All engines bit-identical.\n";
  if (speedup_16 > 0.0 && speedup_16 < 10.0) {
    std::cout << "FAIL: batched speedup on 16x16 is "
              << common::to_fixed(speedup_16, 1) << "x (< 10x floor).\n";
    return 1;
  }
  return 0;
}
