// Parallel-search scaling probe -> BENCH_parallel.json.
//
// Two scaling families, each swept over a thread count:
//
//  * BM_CutSetParallel/n/T — find_minimum_cut_sets with both parallel
//    layers on (T escalation workers x T subtree workers). The 1-thread
//    entries emit the full deterministic counter set (nodes, pivots,
//    conflicts, ...) and CI exact-matches them against the committed
//    baseline: threads == 1 must stay bit-identical to the serial solver.
//    Multi-thread entries emit only the thread-invariant answers (budget,
//    proven) — node order is scheduling-dependent, the certified minimum
//    is not.
//  * BM_CampaignCatalogParallel/T — run_campaign_catalog over a small
//    catalog of arrays. `detected` is emitted at every thread count:
//    the counter-seeded trial RNG makes detection counts thread-invariant
//    by construction, so a mismatch at any T is a sharding bug.
//
// Wall-clock speedup curves are CI artifacts (runner-dependent), never
// gated; the counters are the merge gate. See bench/run_benchmarks.sh and
// .github/workflows/ci.yml.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/ilp_models.h"
#include "grid/presets.h"
#include "sim/campaign.h"
#include "sim/simulator.h"

namespace {

using namespace fpva;

void BM_CutSetParallel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const grid::ValveArray array = grid::full_array(n, n);
  ilp::Options options;
  options.threads = threads;
  options.escalation_threads = threads;
  long nodes = 0;
  long pivots = 0;
  long conflicts = 0;
  long learned = 0;
  int budget = 0;
  bool proven = false;
  for (auto _ : state) {
    const auto result = core::find_minimum_cut_sets(array, 1, 8, true,
                                                    options);
    if (!result.has_value()) {
      state.SkipWithError("cut ILP infeasible");
      break;
    }
    nodes = result->ilp.nodes;
    pivots = result->ilp.lp_pivots;
    conflicts = result->ilp.conflicts;
    learned = result->ilp.nogoods_learned;
    budget = result->cut_budget;
    proven = result->proven_minimal;
    benchmark::DoNotOptimize(result->cut_budget);
  }
  // Thread-invariant answers: gated at every thread count.
  state.counters["budget"] = static_cast<double>(budget);
  state.counters["proven"] = proven ? 1.0 : 0.0;
  if (threads == 1) {
    // Deterministic only on the serial path: exact-matched by CI.
    state.counters["nodes"] = static_cast<double>(nodes);
    state.counters["pivots"] = static_cast<double>(pivots);
    state.counters["conflicts"] = static_cast<double>(conflicts);
    state.counters["learned"] = static_cast<double>(learned);
  }
}
BENCHMARK(BM_CutSetParallel)
    ->Args({3, 1})
    ->Args({3, 2})
    ->Args({3, 4})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Unit(benchmark::kMillisecond);

void BM_CampaignCatalogParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::vector<grid::ValveArray> arrays = {grid::full_array(4, 4),
                                                grid::table1_array(5),
                                                grid::full_array(3, 6)};
  std::vector<std::vector<sim::TestVector>> vectors;
  for (const grid::ValveArray& array : arrays) {
    const sim::Simulator simulator(array);
    sim::TestVector vector;
    vector.states = sim::ValveStates(
        static_cast<std::size_t>(array.valve_count()), true);
    vector.expected = simulator.expected(vector.states);
    vectors.push_back({std::move(vector)});
  }
  sim::CampaignOptions options;
  options.trials_per_count = 4096;
  options.max_faults = 4;
  options.include_control_leaks = true;
  std::vector<sim::CatalogEntry> entries;
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    sim::CatalogEntry entry;
    entry.array = &arrays[i];
    entry.vectors = vectors[i];
    entry.options = options;
    entries.push_back(entry);
  }
  long detected = 0;
  long trials = 0;
  for (auto _ : state) {
    const auto results = sim::run_campaign_catalog(entries, threads);
    detected = 0;
    trials = 0;
    for (const sim::CampaignResult& result : results) {
      for (const sim::CampaignRow& row : result.rows) {
        detected += row.detected;
        trials += row.trials;
      }
    }
    benchmark::DoNotOptimize(detected);
  }
  // Counter-seeded trial RNG: identical at every thread count, gated.
  state.counters["detected"] = static_cast<double>(detected);
  state.counters["trials"] = static_cast<double>(trials);
}
BENCHMARK(BM_CampaignCatalogParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
