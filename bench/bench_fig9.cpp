// E3 -- reproduces Fig. 9: the flow paths covering all 744 valves of the
// irregular 20x20 array (three transport channels, two obstacles).
//
// Paper: 16 flow paths. Expected shape: a comparable small number of paths
// (the constructive engine usually needs fewer), all 744 valves covered.
#include <iostream>

#include "core/generator.h"
#include "core/report.h"
#include "grid/presets.h"

int main() {
  using namespace fpva;
  const grid::ValveArray array = grid::fig9_array();

  core::GeneratorOptions options;
  options.hierarchical = true;
  options.block_size = 5;
  options.generate_cut_vectors = false;
  options.generate_leak_vectors = false;
  const auto set = core::generate_test_set(array, options);

  int covered = 0;
  {
    std::vector<bool> mask(static_cast<std::size_t>(array.valve_count()),
                           false);
    for (const auto& path : set.paths) {
      for (const auto v : core::path_valves(array, path)) {
        mask[static_cast<std::size_t>(v)] = true;
      }
    }
    for (const bool c : mask) covered += c;
  }

  std::cout << "Fig. 9 -- flow paths for the 20x20 array with channels and "
               "obstacles\n\n";
  std::cout << set.paths.size() << " flow paths cover " << covered << " of "
            << array.valve_count()
            << " valves (paper: 16 paths / 744 valves)\n\n";
  std::cout << core::render_paths(array, set.paths);
  std::cout << "\nLegend: digits/letters = path ids, '*' = shared cells, "
               "'o' = always-open channel, '#' = wall/obstacle, S = source, "
               "M = pressure meter.\n";
  return 0;
}
